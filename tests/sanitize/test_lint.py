"""Static lint prong: every rule fires on its fixture, stays quiet
on the sanctioned pattern, and the shipped tree is clean."""

import textwrap
from pathlib import Path

import pytest

from repro.sanitize.lint import (
    RULES,
    lint_paths,
    lint_source,
    render_json,
    render_text,
    select_rules,
)

SRC = Path(__file__).resolve().parents[2] / "src"


def findings_for(rule_id, source, path="<test>"):
    return lint_source(textwrap.dedent(source), path,
                       rules=select_rules([rule_id]))


# ----------------------------------------------------------------------
# REP001 — unseeded randomness


def test_rep001_flags_bare_default_rng():
    fs = findings_for("REP001", """
        import numpy as np
        rng = np.random.default_rng()
        """)
    assert [f.rule for f in fs] == ["REP001"]
    assert "seed" in fs[0].message


def test_rep001_flags_legacy_global_api():
    fs = findings_for("REP001", """
        import numpy as np
        np.random.seed(0)
        x = np.random.rand(4)
        """)
    assert len(fs) == 2
    assert all(f.rule == "REP001" for f in fs)


def test_rep001_allows_seeded_rng():
    fs = findings_for("REP001", """
        import numpy as np
        from numpy.random import default_rng
        a = np.random.default_rng(2024)
        b = default_rng(seed=7)
        c = np.random.Generator(np.random.PCG64(1))
        """)
    assert fs == []


# ----------------------------------------------------------------------
# REP002 — incomplete backend protocol


def test_rep002_flags_half_a_backend():
    fs = findings_for("REP002", """
        class HalfBackend:
            def run(self, contigs, k):
                return None
        """)
    assert [f.rule for f in fs] == ["REP002"]
    assert "run_schedule" in fs[0].message


def test_rep002_allows_full_protocol_and_subclasses():
    fs = findings_for("REP002", """
        class FullBackend:
            def run(self, contigs, k): ...
            def run_schedule(self, contigs, ks): ...

        class DerivedKernel(FullBackend):
            def run(self, contigs, k): ...

        class NotABackendThing:
            def run(self): ...
        """)
    assert fs == []


# ----------------------------------------------------------------------
# REP003 — undeclared handled events


def test_rep003_flags_undeclared_event_dispatch():
    fs = findings_for("REP003", """
        class Watcher:
            handled_events = (LaunchDone,)

            def handle(self, event, bus):
                if isinstance(event, LaunchDone):
                    pass
                elif isinstance(event, (SlotWrite, BarrierSync)):
                    pass
        """)
    assert sorted(f.rule for f in fs) == ["REP003", "REP003"]
    messages = " ".join(f.message for f in fs)
    assert "SlotWrite" in messages and "BarrierSync" in messages


def test_rep003_allows_declared_and_nonliteral():
    fs = findings_for("REP003", """
        class Declared:
            handled_events = (LaunchDone, SlotWrite)

            def handle(self, event, bus):
                if isinstance(event, SlotWrite):
                    pass

        class LazyProperty:
            @property
            def handled_events(self):
                return (LaunchDone,)

            def handle(self, event, bus):
                if isinstance(event, WaveExecuted):
                    pass
        """)
    assert fs == []


# ----------------------------------------------------------------------
# REP004 — SlotAccess without a category


def test_rep004_flags_uncategorized_slot_access():
    fs = findings_for("REP004", """
        bus.emit(SlotAccess(phase="construct", slots=s, warps=w))
        """)
    assert [f.rule for f in fs] == ["REP004"]


def test_rep004_allows_categorized_slot_access():
    fs = findings_for("REP004", """
        bus.emit(SlotAccess(phase="construct", slots=s, warps=w,
                            kind="probe"))
        """)
    assert fs == []


# ----------------------------------------------------------------------
# REP005 — float arithmetic in INTOP-counted paths


def test_rep005_flags_floats_in_opcount_module():
    fs = findings_for("REP005", """
        def anything(k):
            return k / 2 + 0.5
        """, path="src/repro/hashing/opcount.py")
    assert sorted(f.rule for f in fs) == ["REP005", "REP005"]


def test_rep005_flags_intops_functions_anywhere():
    fs = findings_for("REP005", """
        def iteration_intops(k):
            return (k * 3) / 2
        """)
    assert [f.rule for f in fs] == ["REP005"]
    assert "//" in fs[0].message


def test_rep005_allows_integer_arithmetic_and_rate_conversions():
    fs = findings_for("REP005", """
        def hash_intops(k):
            return (k // 4) * 13 + 7

        def gintops_per_second(intops, seconds):
            return intops / 1e9 / seconds
        """)
    assert fs == []


# ----------------------------------------------------------------------
# REP006 — per-element Python loops in engine phase hot paths

ENGINE = "src/repro/kernels/engine"


def test_rep006_flags_per_lane_for_loop_in_hot_path():
    fs = findings_for("REP006", """
        def _insert_wave(self, batch, tables, idx, bus, lanes=None):
            for lane in idx:
                tables.vote(lane)
        """, path=f"{ENGINE}/construct.py")
    assert [f.rule for f in fs] == ["REP006"]
    assert "_insert_wave" in fs[0].message


def test_rep006_flags_comprehensions_and_zip_loops():
    fs = findings_for("REP006", """
        def run(self, batch, tables, bus):
            fps = [f for f in pending]
            for w, h in zip(warps, homes):
                probe(w, h)
        """, path=f"{ENGINE}/walk.py")
    assert sorted(f.rule for f in fs) == ["REP006", "REP006"]


def test_rep006_allows_range_loops_and_cold_functions():
    fs = findings_for("REP006", """
        def run(self, batch, tables, bus):
            for step in range(max_len):
                advance(step)
            caps = [estimate(j) for j in range(n_bins)]
            return caps

        def summarize(self):
            return [str(w) for w in self.warps]
        """, path=f"{ENGINE}/construct.py")
    assert fs == []


def test_rep006_scoped_to_engine_phase_modules():
    source = """
        def run(self):
            for w in warps:
                visit(w)
        """
    assert findings_for("REP006", source,
                        path=f"{ENGINE}/oracle.py") == []
    assert findings_for("REP006", source,
                        path="src/repro/analysis/walk.py") == []


# ----------------------------------------------------------------------
# REP007 — blocking calls in serve coroutines

SERVE = "src/repro/serve"


def test_rep007_flags_blocking_calls_in_coroutines():
    fs = findings_for("REP007", """
        async def submit(self, body):
            time.sleep(0.1)
            with open("log.json") as fh:
                data = fh.read()
            path.write_text(data)
            os.fsync(fd)
            subprocess.run(["sync"])
        """, path=f"{SERVE}/service.py")
    assert [f.rule for f in fs] == ["REP007"] * 5
    assert "submit" in fs[0].message
    assert "run_in_executor" in fs[0].message


def test_rep007_exempts_sync_helpers_and_executor_lambdas():
    fs = findings_for("REP007", """
        async def start(self):
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                None, lambda: open(self.path).read())

            def _save():
                with open(self.path, "w") as fh:
                    fh.write("x")
            await loop.run_in_executor(None, _save)
            await asyncio.sleep(0.01)

        def sync_helper(self):
            time.sleep(0.1)
            return open("f").read()
        """, path=f"{SERVE}/service.py")
    assert fs == []


def test_rep007_checks_nested_coroutines_once():
    fs = findings_for("REP007", """
        async def outer(self):
            async def inner():
                time.sleep(1)
            await inner()
        """, path=f"{SERVE}/batcher.py")
    assert [f.rule for f in fs] == ["REP007"]
    assert "inner" in fs[0].message


def test_rep007_scoped_to_serve_modules():
    source = """
        async def poll(self):
            time.sleep(0.5)
        """
    assert findings_for("REP007", source,
                        path="src/repro/analysis/bench.py") == []
    assert findings_for("REP007", source,
                        path=f"{SERVE}/worker.py") != []


# ----------------------------------------------------------------------
# REP008 — silent failure handling in resilience paths

RESIL = "src/repro/resilience"


def test_rep008_flags_swallowed_broad_except():
    fs = findings_for("REP008", """
        def poll(self):
            try:
                refresh()
            except Exception:
                pass
            try:
                refresh()
            except:
                ...
        """, path=f"{SERVE}/service.py")
    assert [f.rule for f in fs] == ["REP008"] * 2
    assert "swallows" in fs[0].message


def test_rep008_flags_backoff_free_retry_loop():
    fs = findings_for("REP008", """
        def launch(self):
            while True:
                try:
                    return attempt()
                except TransientError:
                    continue
        """, path=f"{RESIL}/retry.py")
    assert [f.rule for f in fs] == ["REP008"]
    assert "backoff" in fs[0].message


def test_rep008_allows_narrow_handled_and_backed_off():
    fs = findings_for("REP008", """
        def launch(self):
            try:
                cleanup()
            except OSError:
                pass  # narrow: best-effort cleanup
            try:
                run()
            except Exception as exc:
                record(exc)  # handled, not swallowed
            for attempt in range(3):
                try:
                    return attempt_once()
                except BackendLaunchError:
                    sleep(backoff_delay(attempt))
        """, path=f"{RESIL}/retry.py")
    assert fs == []


def test_rep008_scoped_to_serve_and_resilience():
    source = """
        def run(self):
            while True:
                try:
                    return go()
                except TransientError:
                    continue
        """
    assert findings_for("REP008", source,
                        path="src/repro/analysis/bench.py") == []
    assert findings_for("REP008", source,
                        path=f"{RESIL}/faults.py") != []


def test_rep008_nested_def_resets_loop_scope():
    fs = findings_for("REP008", """
        def outer(self):
            for job in jobs:
                def attempt_one():
                    try:
                        return go()
                    except TransientError:
                        raise
                retry_transient(attempt_one)
        """, path=f"{SERVE}/supervisor.py")
    assert fs == []


# ----------------------------------------------------------------------
# engine mechanics


def test_rule_catalog_is_the_documented_thirteen():
    assert sorted(RULES) == [f"REP{n:03d}" for n in range(1, 14)]
    for rule_id, rule in RULES.items():
        assert rule.rule_id == rule_id
        assert rule.description


def test_sanitize_docstring_tracks_the_catalog_span():
    # satellite of PR 10: the package docstring asserts its own rule
    # span at import time, so this can only fail if someone weakens the
    # assert itself
    import repro.sanitize as sanitize
    assert f"{min(RULES)}–{max(RULES)}" in sanitize.__doc__


def test_select_rules_rejects_unknown_ids():
    with pytest.raises(ValueError, match="REP999"):
        select_rules(["REP999"])


def test_findings_sorted_and_formatted():
    fs = findings_for("REP001", """
        import numpy as np
        b = np.random.rand(2)
        a = np.random.default_rng()
        """, path="fixture.py")
    assert [f.line for f in fs] == sorted(f.line for f in fs)
    line = fs[0].format()
    assert line.startswith("fixture.py:")
    assert "REP001" in line


def test_render_text_and_json():
    fs = findings_for("REP004", "SlotAccess(phase='p', slots=s, warps=w)")
    text = render_text(fs)
    assert "1 finding(s)" in text
    import json

    records = json.loads(render_json(fs))
    assert records[0]["rule"] == "REP004"
    assert render_json([]) == "[]"


def test_shipped_source_tree_is_clean():
    findings = lint_paths([SRC])
    assert findings == [], render_text(findings)


def test_shipped_source_tree_is_semantically_clean():
    # the whole-program pass (REP009-REP013 + suppression hygiene) must
    # also come back empty on src — pragma-suppressed false positives
    # are fine, unbaselined findings are not
    from repro.sanitize.semantic import analyze_paths

    result = analyze_paths([SRC])
    assert result.findings == [], render_text(result.findings)


def test_select_rules_accepts_ranges_and_prefixes():
    ids = [r.rule_id for r in select_rules(["REP009-REP013"])]
    assert ids == ["REP009", "REP010", "REP011", "REP012", "REP013"]
    ids = [r.rule_id for r in select_rules(["REP0"])]
    assert ids == sorted(RULES)
    # order preserved, duplicates dropped, exact ids mix in
    ids = [r.rule_id for r in select_rules(["REP006", "REP001-REP002",
                                            "REP006"])]
    assert ids == ["REP006", "REP001", "REP002"]
    with pytest.raises(ValueError, match="REP42-REP99"):
        select_rules(["REP42-REP99"])
