"""CLI wiring: ``repro lint`` and ``repro run --sanitize`` exit codes."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def dat(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "tiny.dat"
    assert main(["generate", "21", str(path), "--scale", "0.002"]) == 0
    return str(path)


# ----------------------------------------------------------------------
# repro lint


def test_lint_shipped_src_is_clean(capsys):
    assert main(["lint", "src"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_lint_violating_fixture_exits_1(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nrng = np.random.default_rng()\n")
    assert main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "REP001" in out
    assert f"{bad}:2:" in out


def test_lint_json_format(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("SlotAccess(phase='p', slots=s, warps=w)\n")
    assert main(["lint", str(bad), "--format", "json"]) == 1
    records = json.loads(capsys.readouterr().out)
    assert records[0]["rule"] == "REP004"


def test_lint_select_filters_rules(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nrng = np.random.default_rng()\n")
    assert main(["lint", str(bad), "--select", "REP004"]) == 0
    assert main(["lint", str(bad), "--select", "REP999"]) == 2


def test_lint_select_accepts_ranges_and_prefixes(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nrng = np.random.default_rng()\n")
    # REP001 is outside the semantic range, inside the REP0 prefix
    assert main(["lint", str(bad), "--select", "REP009-REP013"]) == 0
    capsys.readouterr()
    assert main(["lint", str(bad), "--select", "REP0"]) == 1
    assert "REP001" in capsys.readouterr().out
    assert main(["lint", str(bad), "--select", "REP42-REP99"]) == 2
    assert "unknown lint rule id(s)" in capsys.readouterr().err


def test_lint_explain_prints_the_rule_docstring(capsys):
    assert main(["lint", "--explain", "REP009"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("REP009:")
    assert "run_in_executor" in out
    assert main(["lint", "--explain", "REP000"]) == 0
    assert "unused suppression" in capsys.readouterr().out
    assert main(["lint", "--explain", "REP999"]) == 2
    assert "unknown lint rule id(s)" in capsys.readouterr().err


def test_lint_sarif_format(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nrng = np.random.default_rng()\n")
    assert main(["lint", str(bad), "--format", "sarif"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    assert doc["runs"][0]["results"][0]["ruleId"] == "REP001"


def test_lint_cache_is_transparent(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nrng = np.random.default_rng()\n")
    cache = tmp_path / "cache.json"
    assert main(["lint", str(bad), "--format", "json",
                 "--cache", str(cache)]) == 1
    cold = capsys.readouterr().out
    assert cache.exists()
    assert main(["lint", str(bad), "--format", "json",
                 "--cache", str(cache)]) == 1
    captured = capsys.readouterr()
    assert captured.out == cold
    assert "1 cached" in captured.err


def test_lint_write_baseline_then_clean_run(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nrng = np.random.default_rng()\n")
    baseline = tmp_path / "baseline.json"
    assert main(["lint", str(bad), "--baseline", str(baseline),
                 "--write-baseline"]) == 0
    assert "wrote 1 baseline finding(s)" in capsys.readouterr().err
    assert main(["lint", str(bad), "--baseline", str(baseline)]) == 0
    captured = capsys.readouterr()
    assert "0 finding(s)" in captured.out
    assert "1 baselined" in captured.err


# ----------------------------------------------------------------------
# repro run --sanitize


def test_run_sanitize_clean_backend_exits_0(dat, tmp_path, capsys):
    out = tmp_path / "out.fa"
    code = main(["run", dat, "21", str(out), "--backend", "cuda",
                 "--sanitize", "all"])
    assert code == 0
    assert "sanitizer: 0 findings" in capsys.readouterr().out


def test_run_sanitize_buggy_backend_exits_1(dat, tmp_path, capsys):
    out = tmp_path / "out.fa"
    code = main(["run", dat, "21", str(out), "--backend", "buggy-demo",
                 "--sanitize", "all"])
    assert code == 1
    stdout = capsys.readouterr().out
    for checker in ("racecheck", "synccheck", "initcheck"):
        assert checker in stdout


def test_run_sanitize_single_check(dat, tmp_path, capsys):
    out = tmp_path / "out.fa"
    code = main(["run", dat, "21", str(out), "--backend", "buggy-demo",
                 "--sanitize", "initcheck"])
    assert code == 1
    stdout = capsys.readouterr().out
    assert "initcheck" in stdout
    assert "racecheck" not in stdout


def test_run_sanitize_rejects_scalar(dat, tmp_path):
    out = tmp_path / "out.fa"
    code = main(["run", dat, "21", str(out), "--backend", "scalar",
                 "--sanitize", "all"])
    assert code == 2


def test_run_sanitize_rejects_unknown_check(dat, tmp_path):
    out = tmp_path / "out.fa"
    code = main(["run", dat, "21", str(out), "--backend", "cuda",
                 "--sanitize", "bogus"])
    assert code == 2
