"""CLI wiring: ``repro lint`` and ``repro run --sanitize`` exit codes."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def dat(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "tiny.dat"
    assert main(["generate", "21", str(path), "--scale", "0.002"]) == 0
    return str(path)


# ----------------------------------------------------------------------
# repro lint


def test_lint_shipped_src_is_clean(capsys):
    assert main(["lint", "src"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_lint_violating_fixture_exits_1(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nrng = np.random.default_rng()\n")
    assert main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "REP001" in out
    assert f"{bad}:2:" in out


def test_lint_json_format(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("SlotAccess(phase='p', slots=s, warps=w)\n")
    assert main(["lint", str(bad), "--format", "json"]) == 1
    records = json.loads(capsys.readouterr().out)
    assert records[0]["rule"] == "REP004"


def test_lint_select_filters_rules(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import numpy as np\nrng = np.random.default_rng()\n")
    assert main(["lint", str(bad), "--select", "REP004"]) == 0
    assert main(["lint", str(bad), "--select", "REP999"]) == 2


# ----------------------------------------------------------------------
# repro run --sanitize


def test_run_sanitize_clean_backend_exits_0(dat, tmp_path, capsys):
    out = tmp_path / "out.fa"
    code = main(["run", dat, "21", str(out), "--backend", "cuda",
                 "--sanitize", "all"])
    assert code == 0
    assert "sanitizer: 0 findings" in capsys.readouterr().out


def test_run_sanitize_buggy_backend_exits_1(dat, tmp_path, capsys):
    out = tmp_path / "out.fa"
    code = main(["run", dat, "21", str(out), "--backend", "buggy-demo",
                 "--sanitize", "all"])
    assert code == 1
    stdout = capsys.readouterr().out
    for checker in ("racecheck", "synccheck", "initcheck"):
        assert checker in stdout


def test_run_sanitize_single_check(dat, tmp_path, capsys):
    out = tmp_path / "out.fa"
    code = main(["run", dat, "21", str(out), "--backend", "buggy-demo",
                 "--sanitize", "initcheck"])
    assert code == 1
    stdout = capsys.readouterr().out
    assert "initcheck" in stdout
    assert "racecheck" not in stdout


def test_run_sanitize_rejects_scalar(dat, tmp_path):
    out = tmp_path / "out.fa"
    code = main(["run", dat, "21", str(out), "--backend", "scalar",
                 "--sanitize", "all"])
    assert code == 2


def test_run_sanitize_rejects_unknown_check(dat, tmp_path):
    out = tmp_path / "out.fa"
    code = main(["run", dat, "21", str(out), "--backend", "cuda",
                 "--sanitize", "bogus"])
    assert code == 2
