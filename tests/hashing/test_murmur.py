"""Tests for the MurmurHash2 implementation.

Reference digests were computed from Austin Appleby's C MurmurHash2
(SMHasher) semantics: h = seed ^ len; per-4-byte little-endian mix with
m=0x5bd1e995, r=24; tail bytes; final avalanche.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import murmur


def _reference_murmur2(data: bytes, seed: int = 0) -> int:
    """Independent straight-line transcription of the C code."""
    m, r = 0x5BD1E995, 24
    mask = 0xFFFFFFFF
    n = len(data)
    h = (seed ^ n) & mask
    i = 0
    while n - i >= 4:
        k = data[i] | data[i + 1] << 8 | data[i + 2] << 16 | data[i + 3] << 24
        k = (k * m) & mask
        k ^= k >> r
        k = (k * m) & mask
        h = (h * m) & mask
        h ^= k
        i += 4
    rem = n - i
    if rem == 3:
        h ^= data[i + 2] << 16
    if rem >= 2:
        h ^= data[i + 1] << 8
    if rem >= 1:
        h ^= data[i]
        h = (h * m) & mask
    h ^= h >> 13
    h = (h * m) & mask
    h ^= h >> 15
    return h


class TestScalar:
    def test_empty(self):
        assert murmur.murmur2(b"") == _reference_murmur2(b"")

    def test_known_lengths(self):
        for n in range(0, 20):
            data = bytes(range(n))
            assert murmur.murmur2(data) == _reference_murmur2(data), n

    def test_seed_changes_digest(self):
        assert murmur.murmur2(b"ACGTACGT", seed=1) != murmur.murmur2(b"ACGTACGT", seed=2)

    def test_accepts_uint8_array(self):
        arr = np.array([0, 1, 2, 3], dtype=np.uint8)
        assert murmur.murmur2(arr) == murmur.murmur2(bytes([0, 1, 2, 3]))

    def test_aligned_equals_plain(self):
        for n in (4, 8, 21, 33, 55, 77):
            data = bytes((i * 37) % 256 for i in range(n))
            assert murmur.murmur_aligned2(data) == murmur.murmur2(data)

    @given(st.binary(min_size=0, max_size=128), st.integers(0, 2**32 - 1))
    def test_matches_reference(self, data, seed):
        assert murmur.murmur2(data, seed) == _reference_murmur2(data, seed)

    def test_range_is_uint32(self):
        for n in range(40):
            assert 0 <= murmur.murmur2(bytes(n)) <= 0xFFFFFFFF


class TestBatch:
    def test_matches_scalar_all_kmer_sizes(self):
        rng = np.random.default_rng(0)
        for k in (21, 33, 55, 77):
            keys = rng.integers(0, 4, size=(50, k), dtype=np.uint8)
            digests = murmur.murmur2_batch(keys, seed=17)
            for i in range(keys.shape[0]):
                assert int(digests[i]) == murmur.murmur2(keys[i].tobytes(), seed=17)

    def test_empty_batch(self):
        out = murmur.murmur2_batch(np.empty((0, 21), dtype=np.uint8))
        assert out.shape == (0,)
        assert out.dtype == np.uint32

    def test_rejects_1d(self):
        import pytest

        with pytest.raises(ValueError):
            murmur.murmur2_batch(np.zeros(4, dtype=np.uint8))

    @settings(max_examples=20)
    @given(st.integers(1, 16), st.integers(1, 40), st.integers(0, 2**32 - 1))
    def test_batch_property(self, n, length, seed):
        rng = np.random.default_rng(seed)
        keys = rng.integers(0, 256, size=(n, length), dtype=np.uint8)
        digests = murmur.murmur2_batch(keys, seed=seed)
        assert int(digests[0]) == murmur.murmur2(keys[0].tobytes(), seed=seed)
        assert int(digests[-1]) == murmur.murmur2(keys[-1].tobytes(), seed=seed)

    def test_distribution_roughly_uniform(self):
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 4, size=(20000, 21), dtype=np.uint8)
        digests = murmur.murmur2_batch(keys)
        buckets = np.bincount(digests % np.uint32(16), minlength=16)
        assert buckets.min() > 20000 / 16 * 0.8
        assert buckets.max() < 20000 / 16 * 1.2


class TestStream:
    """murmur2_stream must equal murmur2_batch over gathered windows —
    the identity the batch preparer's per-k hashing relies on."""

    @settings(max_examples=25)
    @given(st.integers(0, 2**32 - 1), st.integers(1, 40), st.integers(0, 255))
    def test_matches_batch_on_all_windows(self, seed, length, hseed):
        rng = np.random.default_rng(seed)
        stream = rng.integers(0, 256, size=length + 60, dtype=np.uint8)
        starts = np.arange(stream.size - length + 1, dtype=np.int64)
        windows = stream[starts[:, None] + np.arange(length)]
        np.testing.assert_array_equal(
            murmur.murmur2_stream(stream, starts, length, seed=hseed),
            murmur.murmur2_batch(windows, seed=hseed))

    def test_precomputed_words_identical(self):
        rng = np.random.default_rng(2)
        stream = rng.integers(0, 256, size=300, dtype=np.uint8)
        starts = np.arange(0, 260, 7, dtype=np.int64)
        words = murmur.murmur2_words(stream)
        np.testing.assert_array_equal(
            murmur.murmur2_stream(stream, starts, 33, words=words),
            murmur.murmur2_stream(stream, starts, 33))

    def test_words_are_little_endian(self):
        stream = np.array([1, 2, 3, 4, 5], dtype=np.uint8)
        words = murmur.murmur2_words(stream)
        assert words.dtype == np.uint32
        assert words.tolist() == [0x04030201, 0x05040302]
        assert murmur.murmur2_words(stream[:3]).size == 0

    def test_empty_starts(self):
        out = murmur.murmur2_stream(np.zeros(10, dtype=np.uint8),
                                    np.empty(0, dtype=np.int64), 4)
        assert out.shape == (0,) and out.dtype == np.uint32

    def test_out_of_bounds_window_rejected(self):
        import pytest

        stream = np.zeros(10, dtype=np.uint8)
        with pytest.raises(ValueError):
            murmur.murmur2_stream(stream, np.array([8]), 4)
        with pytest.raises(ValueError):
            murmur.murmur2_stream(stream, np.array([-1]), 4)
        with pytest.raises(ValueError):
            murmur.murmur2_stream(stream, np.array([0]), 0)
