"""The cost model must reproduce paper Table V exactly."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.hashing import opcount

# Table V of the paper.
TABLE_V = {
    21: {"initialization": 33, "mix_loop": 125, "cleanup": 31, "total": 215},
    33: {"initialization": 33, "mix_loop": 200, "cleanup": 31, "total": 305},
    55: {"initialization": 33, "mix_loop": 325, "cleanup": 31, "total": 457},
    77: {"initialization": 33, "mix_loop": 475, "cleanup": 31, "total": 635},
}


@pytest.mark.parametrize("k", sorted(TABLE_V))
def test_table5_totals(k):
    assert opcount.hash_intops(k) == TABLE_V[k]["total"]


@pytest.mark.parametrize("k", sorted(TABLE_V))
@pytest.mark.parametrize("phase", ["initialization", "mix_loop", "cleanup"])
def test_table5_phases(k, phase):
    assert opcount.hash_intops_breakdown(k)[phase] == TABLE_V[k][phase]


def test_breakdown_sums_to_total():
    for k in (5, 21, 33, 55, 77, 101):
        b = opcount.hash_intops_breakdown(k)
        assert (
            b["initialization"] + b["mix_loop"] + b["cleanup"] + b["key_handling"]
            == b["total"]
        )


@given(st.integers(1, 500))
def test_monotone_in_k(k):
    assert opcount.hash_intops(k + 1) >= opcount.hash_intops(k)


@given(st.integers(min_value=-10, max_value=0))
def test_rejects_nonpositive_k(k):
    with pytest.raises(ModelError):
        opcount.hash_intops(k)


def test_key_handling_formula():
    # floor(5k/4): fitted residual of Table V (see module docstring).
    assert opcount.key_handling_intops(21) == 26
    assert opcount.key_handling_intops(33) == 41
    assert opcount.key_handling_intops(55) == 68
    assert opcount.key_handling_intops(77) == 96
