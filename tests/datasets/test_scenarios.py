"""Scenario presets: determinism, golden outputs, and the feed-forward
regression scenario (multi-k strictly beats single-k)."""

import json
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.datasets.scenarios import SCENARIOS, get_scenario
from repro.genomics.dna import decode, reverse_complement
from repro.metahipmer.pipeline import DeNovoAssembler

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_scenarios.json").read_text())


def _assemble(scenario):
    data = scenario.build()
    asm = DeNovoAssembler(k_schedule=scenario.k_schedule,
                          min_count=scenario.min_count)
    return data, asm.assemble(data.reads)


class TestRegistry:
    def test_expected_presets(self):
        assert set(SCENARIOS) == {
            "single_genome", "metagenome", "uneven_coverage",
            "high_error", "tandem_repeat", "fork_resolution",
        }

    def test_get_scenario_unknown(self):
        with pytest.raises(KeyError, match="valid:"):
            get_scenario("nope")

    def test_build_is_deterministic(self):
        sc = get_scenario("metagenome")
        a, b = sc.build(), sc.build()
        assert len(a.reads) == len(b.reads)
        assert all(x.sequence == y.sequence and x.name == y.name
                   for x, y in zip(a.reads, b.reads))

    def test_build_seed_override_changes_data(self):
        sc = get_scenario("single_genome")
        a, b = sc.build(), sc.build(seed=999)
        assert any(x.sequence != y.sequence for x, y in zip(a.reads, b.reads))


class TestGoldenOutputs:
    """Every preset's assembly is pinned: fingerprint, N50, round stats."""

    def test_golden_covers_every_preset(self):
        assert set(GOLDEN) == set(SCENARIOS)

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_matches_golden(self, name):
        _, result = _assemble(SCENARIOS[name])
        want = GOLDEN[name]
        assert result.fingerprint() == want["final_fingerprint"]
        assert len(result.contigs) == want["final_contigs"]
        assert result.final_n50 == want["final_n50"]
        assert [asdict(s) for s in result.rounds] == want["rounds"]


class TestForkResolution:
    """The committed feed-forward regression: k=(21,33) must strictly
    beat k=(33,) alone. Fails if round k+1 does not re-ingest round k's
    merged contigs (the pre-fix pipeline rebuilt every round from raw
    reads, making the last round equivalent to single-k assembly)."""

    def test_multi_k_strictly_beats_single_k(self):
        sc = get_scenario("fork_resolution")
        data = sc.build()
        single = DeNovoAssembler(k_schedule=(33,),
                                 min_count=sc.min_count).assemble(data.reads)
        multi = DeNovoAssembler(k_schedule=(21, 33),
                                min_count=sc.min_count).assemble(data.reads)
        longest = lambda r: max(len(c.extended_sequence()) for c in r.contigs)
        assert longest(multi) > longest(single)
        assert multi.final_n50 > single.final_n50

    def test_multi_k_reconstructs_full_genome(self):
        sc = get_scenario("fork_resolution")
        data, result = _assemble(sc)
        truth = decode(data.genomes[0])
        assert len(result.contigs) == 1
        seq = result.contigs[0].extended_sequence()
        assert seq == truth or str(reverse_complement(seq)) == truth

    def test_single_k_breaks_at_thin_junction(self):
        sc = get_scenario("fork_resolution")
        data = sc.build()
        single = DeNovoAssembler(k_schedule=(33,),
                                 min_count=sc.min_count).assemble(data.reads)
        assert len(single.contigs) == 2

    def test_provenance_accumulates_per_round(self):
        _, result = _assemble(get_scenario("fork_resolution"))
        assert [s.k for s in result.rounds] == [21, 33]
        assert len(result.round_contigs) == 2
        # round 2 saw round 1's merged contigs
        assert result.rounds[1].carried_in == len(result.round_contigs[0])
        # and the final contigs are exactly the last round's merge
        assert result.contigs == result.round_contigs[-1]


class TestFeedForwardBridging:
    def test_uneven_coverage_improves_across_rounds(self):
        """The thin half breaks at k=33 from raw reads alone; carried
        contigs bridge it, so the merged N50 improves round to round."""
        _, result = _assemble(get_scenario("uneven_coverage"))
        assert result.rounds[1].merged_n50 > result.rounds[0].merged_n50

    def test_tandem_repeat_stays_broken(self):
        """The pathological case: a 30 bp unit x4 cannot be resolved at
        k<=33, multi-k or not — the assembly stays fragmented."""
        data, result = _assemble(get_scenario("tandem_repeat"))
        assert len(result.contigs) > 1
        assert result.final_n50 < len(data.genomes[0])
