"""Tests for Table II characteristics and their measurement."""

import pytest

from repro.datasets.characteristics import (
    TABLE_II,
    measure_characteristics,
)
from repro.errors import DatasetError
from repro.genomics.contig import Contig
from repro.genomics.reads import Read, ReadSet


class TestTableII:
    def test_verbatim_paper_values(self):
        assert TABLE_II[21].total_contigs == 14195
        assert TABLE_II[21].total_hash_insertions == 10_011_465
        assert TABLE_II[33].total_reads == 20421
        assert TABLE_II[55].average_extn_length == 161.0
        assert TABLE_II[77].total_extns == 577_496

    def test_reads_per_contig(self):
        assert TABLE_II[21].reads_per_contig == pytest.approx(74159 / 14195)

    def test_internal_consistency_insertions(self):
        """Insertions ~ reads * (read_len - k) for every paper row."""
        for k, row in TABLE_II.items():
            approx = row.total_reads * (row.average_read_length - k)
            assert row.total_hash_insertions == pytest.approx(approx, rel=0.05)


class TestScaling:
    def test_scaled_counts(self):
        half = TABLE_II[21].scaled(0.5)
        assert half.total_contigs == round(14195 * 0.5)
        assert half.average_read_length == 155  # per-contig shape preserved
        assert half.average_extn_length == 48.2

    def test_scale_one_is_identity(self):
        assert TABLE_II[33].scaled(1.0) == TABLE_II[33]

    def test_tiny_scale_floors_at_one_contig(self):
        t = TABLE_II[77].scaled(1e-9)
        assert t.total_contigs == 1
        assert t.total_reads >= 1

    def test_rejects_nonpositive(self):
        with pytest.raises(DatasetError):
            TABLE_II[21].scaled(0)


class TestMeasure:
    def _contig(self, seqs):
        c = Contig.from_string("c", "ACGT" * 30)
        c.reads = ReadSet([Read.from_strings(f"r{i}", s) for i, s in enumerate(seqs)])
        return c

    def test_measures_counts(self):
        contigs = [self._contig(["ACGT" * 10, "ACGT" * 5]),
                   self._contig(["ACGT" * 10])]
        m = measure_characteristics(contigs, 21)
        assert m.total_contigs == 2
        assert m.total_reads == 3
        assert m.average_read_length == pytest.approx((40 + 20 + 40) / 3)
        assert m.total_hash_insertions == (40 - 21) + 0 + (40 - 21)

    def test_rejects_empty(self):
        with pytest.raises(DatasetError):
            measure_characteristics([], 21)

    def test_extensions_counted_when_present(self):
        from repro.genomics.contig import ContigExtension, End

        c = self._contig(["ACGT" * 10])
        c.right_extension = ContigExtension(End.RIGHT, "ACGTA", "end", 21)
        m = measure_characteristics([c], 21)
        assert m.total_extns == 5
        assert m.average_extn_length == 5.0
