"""Tests for the Table II dataset generator."""

import pytest

from repro.core.extension import PRODUCTION_POLICY
from repro.datasets.characteristics import TABLE_II, measure_characteristics
from repro.datasets.generate import generate_paper_dataset
from repro.errors import DatasetError
from repro.genomics.contig import End

SCALE = 0.01


@pytest.fixture(scope="module")
def dataset21():
    return generate_paper_dataset(21, scale=SCALE, seed=7)


class TestShapes:
    @pytest.mark.parametrize("k", [21, 33, 55, 77])
    def test_input_columns_close_to_targets(self, k):
        contigs = generate_paper_dataset(k, scale=SCALE)
        m = measure_characteristics(contigs, k)
        t = TABLE_II[k].scaled(SCALE)
        assert m.total_contigs == t.total_contigs
        assert m.total_reads == pytest.approx(t.total_reads, rel=0.03)
        assert m.average_read_length == pytest.approx(t.average_read_length, rel=0.03)
        assert m.total_hash_insertions == pytest.approx(
            t.total_hash_insertions, rel=0.05
        )

    def test_deterministic(self):
        a = generate_paper_dataset(33, scale=SCALE, seed=5)
        b = generate_paper_dataset(33, scale=SCALE, seed=5)
        assert [c.sequence for c in a] == [c.sequence for c in b]
        assert all(
            ra.sequence == rb.sequence
            for ca, cb in zip(a, b)
            for ra, rb in zip(ca.reads, cb.reads)
        )

    def test_different_seeds_differ(self):
        a = generate_paper_dataset(33, scale=SCALE, seed=5)
        b = generate_paper_dataset(33, scale=SCALE, seed=6)
        assert any(ca.sequence != cb.sequence for ca, cb in zip(a, b))

    def test_unknown_k_rejected(self):
        with pytest.raises(DatasetError):
            generate_paper_dataset(42, scale=SCALE)

    def test_explicit_targets_accepted(self):
        t = TABLE_II[21]
        contigs = generate_paper_dataset(21, scale=0.001, targets=t)
        assert len(contigs) == t.scaled(0.001).total_contigs


class TestEndAssignment:
    def test_every_read_has_a_hint(self, dataset21):
        for c in dataset21:
            assert c.read_end_hints is not None
            assert len(c.read_end_hints) == len(c.reads)

    def test_both_ends_used_overall(self, dataset21):
        hints = [h for c in dataset21 for h in c.read_end_hints]
        assert End.LEFT in hints and End.RIGHT in hints

    def test_reads_split_roughly_evenly(self, dataset21):
        hints = [h for c in dataset21 for h in c.read_end_hints]
        right = sum(1 for h in hints if h is End.RIGHT)
        assert 0.35 < right / len(hints) < 0.65

    def test_depth_spread_for_binning(self, dataset21):
        """Binning needs contigs with different read counts."""
        depths = {c.depth for c in dataset21}
        assert len(depths) >= 4


class TestExtensionTargets:
    @pytest.mark.parametrize("k,tol", [(21, 0.25), (33, 0.25), (55, 0.25),
                                       (77, 0.45)])
    def test_assembled_extensions_near_table2(self, k, tol):
        """Running local assembly on the generated data reproduces the
        Table II extension averages (k=77 is budget-limited: 3.08 reads of
        175 bases cannot chain 227 bases; see EXPERIMENTS.md)."""
        from repro.kernels import CudaLocalAssemblyKernel
        from repro.simt.device import A100

        contigs = generate_paper_dataset(k, scale=SCALE)
        res = CudaLocalAssemblyKernel(A100, policy=PRODUCTION_POLICY).run(contigs, k)
        ext = sum(len(b) for b, _ in res.right) + sum(len(b) for b, _ in res.left)
        avg = ext / len(contigs)
        assert avg == pytest.approx(TABLE_II[k].average_extn_length, rel=tol)
