"""Parity: the megabatch engine vs the pinned pre-refactor oracle.

The lockstep refactor (DESIGN.md decision #14) must be *bit-identical*
to the per-warp scalar path it replaced — same extensions, same walk
states, same merged profiles, same per-type event counts, same overflow
outcomes. The pre-refactor implementations survive verbatim in
:mod:`repro.kernels.engine.oracle`; these tests drive both over the
same scenarios, including hypothesis-drawn ones, and require equality
on everything observable.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.extension import PRODUCTION_POLICY
from repro.genomics.simulate import ErrorProfile, ScenarioSpec, simulate_batch
from repro.kernels import CudaLocalAssemblyKernel, HipLocalAssemblyKernel
from repro.kernels.engine import iterate_k_schedule_scalar, oracle_kernel_cls
from repro.kernels.engine.schedule import iterate_k_schedule
from repro.resilience.checkpoint import profile_to_dict
from repro.simt.device import A100, MI250X


class EventCounter:
    """Counts every event by type; declares no ``handled_events``, so the
    bus forces the gated slot/barrier events on for both engines."""

    def __init__(self):
        self.counts = {}

    def handle(self, event, bus):
        name = type(event).__name__
        self.counts[name] = self.counts.get(name, 0) + 1


def _contigs(n, seed, error_rate=0.0, depth=6, read_length=80):
    rng = np.random.default_rng(seed)
    spec = ScenarioSpec(contig_length=150, flank_length=60,
                        read_length=read_length, depth=depth, seed_window=40)
    errors = ErrorProfile(error_rate=error_rate,
                          lo_quality_fraction=0.1 if error_rate else 0.0)
    return [sc.contig for sc in simulate_batch(n, spec, rng, errors)]


def _run_counted(kernel_cls, device, contigs, ks, **opts):
    kern = kernel_cls(device, policy=PRODUCTION_POLICY, **opts)
    counter = kern.add_subscriber(EventCounter())
    return kern.run_schedule(contigs, ks), counter.counts


def assert_schedule_parity(mega, oracle):
    res_m, ev_m = mega
    res_o, ev_o = oracle
    assert res_m.right == res_o.right
    assert res_m.left == res_o.left
    assert res_m.k == res_o.k
    assert res_m.degraded == res_o.degraded
    assert res_m.retried == res_o.retried
    assert profile_to_dict(res_m.profile) == profile_to_dict(res_o.profile)
    assert ev_m == ev_o


class TestScheduleParity:
    @settings(max_examples=8, deadline=None)
    @given(n=st.integers(2, 5), seed=st.integers(0, 2**16),
           err=st.sampled_from([0.0, 0.01, 0.03]))
    def test_hypothesis_parity(self, n, seed, err):
        contigs = _contigs(n, seed, error_rate=err)
        ks = (21, 33)
        oracle_cls = oracle_kernel_cls(CudaLocalAssemblyKernel)
        assert_schedule_parity(
            _run_counted(CudaLocalAssemblyKernel, A100, contigs, ks),
            _run_counted(oracle_cls, A100, contigs, ks))

    def test_hip_protocol_parity(self):
        """The HIP protocol (no in-iteration merges, __all done-flag loop)
        takes different branches in _insert_wave; cover it explicitly."""
        contigs = _contigs(4, seed=11, error_rate=0.01)
        ks = (21, 33, 45)
        oracle_cls = oracle_kernel_cls(HipLocalAssemblyKernel)
        assert_schedule_parity(
            _run_counted(HipLocalAssemblyKernel, MI250X, contigs, ks),
            _run_counted(oracle_cls, MI250X, contigs, ks))

    def test_overflow_parity_drop_contig(self):
        """Starved tables overflow; the DROP_CONTIG degraded sets must
        match the oracle exactly (same warps die, same survivors)."""
        from repro.resilience import (FaultInjector, FaultKind, FaultPlan,
                                      FaultSpec)

        contigs = _contigs(5, seed=7, error_rate=0.02, depth=10)
        ks = (21, 33)

        def opts():
            inj = FaultInjector(FaultPlan(faults=(
                FaultSpec(FaultKind.TABLE_PRESSURE, launch=0, warps=(0, 2),
                          capacity=4),
            )))
            return dict(overflow_policy="drop-contig", fault_injector=inj)

        oracle_cls = oracle_kernel_cls(CudaLocalAssemblyKernel)
        mega = _run_counted(CudaLocalAssemblyKernel, A100, contigs, ks,
                            **opts())
        assert_schedule_parity(
            mega, _run_counted(oracle_cls, A100, contigs, ks, **opts()))
        assert mega[0].degraded  # the pressured tables actually overflowed

    def test_trace_memory_model_and_sanitizer_parity(self):
        """Full instrumentation: byte-accurate traced traffic plus every
        sanitizer check, megabatch vs oracle."""
        contigs = _contigs(3, seed=23, error_rate=0.01)
        ks = (21, 33)
        opts = dict(memory_model="trace", sanitize="all")
        oracle_cls = oracle_kernel_cls(CudaLocalAssemblyKernel)
        kern_m = CudaLocalAssemblyKernel(A100, policy=PRODUCTION_POLICY, **opts)
        kern_o = oracle_cls(A100, policy=PRODUCTION_POLICY, **opts)
        cnt_m = kern_m.add_subscriber(EventCounter())
        cnt_o = kern_o.add_subscriber(EventCounter())
        res_m = kern_m.run_schedule(contigs, ks)
        res_o = kern_o.run_schedule(contigs, ks)
        assert_schedule_parity((res_m, cnt_m.counts), (res_o, cnt_o.counts))
        rep_m, rep_o = kern_m.last_sanitizer_report, kern_o.last_sanitizer_report
        assert rep_m is not None and rep_o is not None
        assert not rep_m.findings and not rep_o.findings


class TestMergeParity:
    """`iterate_k_schedule` (mask assignments) vs the pinned per-contig
    scalar merge loop, driven by the same deterministic backend."""

    def _both(self, contigs, ks, kernel_cls=CudaLocalAssemblyKernel,
              device=A100):
        def run_one_factory():
            kern = kernel_cls(device, policy=PRODUCTION_POLICY)
            return lambda k: kern.run(contigs, k)
        n = len(contigs)
        vec = iterate_k_schedule(run_one_factory(), n, ks)
        sca = iterate_k_schedule_scalar(run_one_factory(), n, ks)
        return vec, sca

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**16), err=st.sampled_from([0.0, 0.02]))
    def test_merge_decisions_match(self, seed, err):
        contigs = _contigs(3, seed, error_rate=err)
        (k_v, prof_v, r_v, l_v), (k_s, prof_s, r_s, l_s) = self._both(
            contigs, (21, 33, 45))
        assert k_v == k_s
        assert r_v == r_s and l_v == l_s
        assert profile_to_dict(prof_v) == profile_to_dict(prof_s)

    def test_early_settle_breaks_identically(self):
        """Perfect reads settle every end at the first k; both merge
        loops must stop there (same last_k, same single-k profile)."""
        contigs = _contigs(4, seed=3, error_rate=0.0)
        (k_v, prof_v, _, _), (k_s, prof_s, _, _) = self._both(
            contigs, (21, 33, 55))
        assert k_v == k_s
        assert profile_to_dict(prof_v) == profile_to_dict(prof_s)
