"""The instrumentation-hook layer: event bus, subscribers, extensibility."""

import numpy as np
import pytest

from repro.genomics.simulate import PERFECT_READS, ScenarioSpec, simulate_batch
from repro.kernels import CudaLocalAssemblyKernel
from repro.kernels.engine import (
    EventBus,
    LaunchDone,
    LaunchStarted,
    MemoryTrafficResolved,
    ProbeIteration,
    SlotAccess,
    WalkStep,
    WaveExecuted,
)
from repro.kernels.vectortable import SLOT_BYTES
from repro.simt.device import A100

SPEC = ScenarioSpec(contig_length=200, flank_length=60, read_length=90,
                    depth=8, seed_window=50)


def _contigs(n=4, seed=3):
    rng = np.random.default_rng(seed)
    return [sc.contig for sc in simulate_batch(n, SPEC, rng, PERFECT_READS)]


class _Recorder:
    """A minimal external subscriber: records every event it sees."""

    def __init__(self):
        self.events = []

    def handle(self, event, bus):
        self.events.append(event)

    def of(self, cls):
        return [e for e in self.events if isinstance(e, cls)]


class TestEventBus:
    def test_subscribe_returns_the_subscriber(self):
        bus = EventBus()
        rec = _Recorder()
        assert bus.subscribe(rec) is rec

    def test_dispatch_order_is_subscription_order(self):
        bus = EventBus()
        seen = []

        class Tagged:
            def __init__(self, tag):
                self.tag = tag

            def handle(self, event, bus):
                seen.append(self.tag)

        bus.subscribe(Tagged("a"))
        bus.subscribe(Tagged("b"))
        bus.emit(object())
        assert seen == ["a", "b"]

    def test_subscriber_may_emit_followup_events(self):
        bus = EventBus()
        rec = _Recorder()

        class Reemitter:
            def handle(self, event, bus):
                if isinstance(event, LaunchDone):
                    bus.emit("followup")

        bus.subscribe(Reemitter())
        bus.subscribe(rec)
        done = LaunchDone(waves=1, construct_iterations=1,
                          walk_steps=1, walk_iterations=1)
        bus.emit(done)
        # nested emits dispatch synchronously: subscribers registered
        # *after* the re-emitter see the follow-up first (which is why
        # the profile subscriber registers before the traffic one)
        assert rec.events == ["followup", done]


class TestKernelEventStream:
    """The stream a real kernel run emits is internally consistent."""

    @pytest.fixture(scope="class")
    def stream(self):
        kern = CudaLocalAssemblyKernel(A100)
        rec = kern.add_subscriber(_Recorder())
        res = kern.run(_contigs(), 21)
        return rec, res

    def test_launch_bracketing(self, stream):
        rec, res = stream
        starts = rec.of(LaunchStarted)
        dones = rec.of(LaunchDone)
        assert len(starts) == len(dones) > 0
        assert res.profile.kernels_launched == len(dones)

    def test_wave_lanes_sum_to_inserts(self, stream):
        rec, res = stream
        assert sum(e.lanes for e in rec.of(WaveExecuted)) == res.profile.inserts

    def test_probe_iterations_split_by_phase(self, stream):
        rec, res = stream
        probes = rec.of(ProbeIteration)
        construct = sum(e.lanes for e in probes if e.phase == "construct")
        walk = sum(e.lanes for e in probes if e.phase == "walk")
        assert construct == res.profile.insert_probe_iterations
        assert walk == res.profile.lookup_probe_iterations

    def test_walk_steps_commit_the_extension_bases(self, stream):
        rec, res = stream
        committed = sum(e.bases_committed for e in rec.of(WalkStep))
        assert committed == res.profile.extension_bases

    def test_traffic_resolution_follows_every_launch(self, stream):
        rec, res = stream
        resolved = rec.of(MemoryTrafficResolved)
        assert len(resolved) == len(rec.of(LaunchDone))
        assert sum(e.hbm_bytes for e in resolved) == pytest.approx(
            res.profile.hbm_bytes)

    def test_slot_accesses_match_the_recorded_trace(self, stream):
        rec, _res = stream
        kern = CudaLocalAssemblyKernel(A100)
        kern.record_trace = True
        kern.run(_contigs(), 21)
        total_slots = sum(e.slots.size for e in rec.of(SlotAccess))
        total_trace = sum(t.size for t in kern.last_trace)
        assert total_slots == total_trace
        assert all((t % SLOT_BYTES == 0).all() for t in kern.last_trace)


class TestSubscriberIsolation:
    def test_extra_subscriber_does_not_change_results(self):
        contigs = _contigs(seed=9)
        plain = CudaLocalAssemblyKernel(A100).run(contigs, 21)
        observed_kern = CudaLocalAssemblyKernel(A100)
        observed_kern.add_subscriber(_Recorder())
        observed = observed_kern.run(contigs, 21)
        assert tuple(observed.right) == tuple(plain.right)
        assert tuple(observed.left) == tuple(plain.left)
        assert observed.profile.intops == plain.profile.intops
        assert observed.profile.hbm_bytes == plain.profile.hbm_bytes

    def test_events_are_immutable(self):
        e = WaveExecuted(lanes=3, warps=1)
        with pytest.raises(AttributeError):
            e.lanes = 4
