"""Failure-injection tests: overflowing tables, adversarial inputs, traces."""

import numpy as np
import pytest

from repro.core.extension import PRODUCTION_POLICY
from repro.errors import HashTableFullError
from repro.genomics.contig import Contig
from repro.genomics.dna import decode, random_sequence
from repro.genomics.reads import Read, ReadSet
from repro.genomics.simulate import PERFECT_READS, ScenarioSpec, simulate_batch
from repro.kernels import CudaLocalAssemblyKernel
from repro.kernels.vectortable import WarpHashTables
from repro.simt.device import A100


def _contigs(n=3, seed=31):
    rng = np.random.default_rng(seed)
    spec = ScenarioSpec(contig_length=150, flank_length=40, read_length=70,
                        depth=5, seed_window=30)
    return [sc.contig for sc in simulate_batch(n, spec, rng, PERFECT_READS)]


class TestOverflow:
    def test_undersized_tables_raise(self):
        """A load factor of ~1 with heavy duplicates must not corrupt —
        overflowing a table raises, like the GPU's '*hashtable full*'."""
        contigs = _contigs()
        # force pathologically small tables via exact sizing + load_factor 1
        kern = CudaLocalAssemblyKernel(A100, policy=PRODUCTION_POLICY,
                                       table_sizing="exact", load_factor=1.0)
        # exact sizing at load factor 1 leaves zero probe headroom only if
        # every k-mer is distinct; duplicates make it fit. Build a true
        # overflow with the raw table instead:
        tables = WarpHashTables(np.array([4]), k=4)
        fps = np.arange(1, 6, dtype=np.uint64)
        with pytest.raises(HashTableFullError):
            for i in range(5):
                slot = tables.slot_of(np.array([0]), np.array([0]),
                                      np.array([i]))
                tables.claim(slot, fps[i : i + 1])
        # the kernel path stays functional
        res = kern.run(contigs, 21)
        assert len(res.right) == len(contigs)


class TestAdversarialInputs:
    def test_homopolymer_contig(self):
        """All-A contigs create immediate loops, not hangs."""
        c = Contig.from_string("poly", "A" * 60)
        c.reads = ReadSet([Read.from_strings(f"r{i}", "A" * 50)
                           for i in range(4)])
        res = CudaLocalAssemblyKernel(A100, policy=PRODUCTION_POLICY).run([c], 21)
        _, state = res.right[0]
        assert state.value in ("loop", "end")

    def test_contig_shorter_than_k(self):
        c = Contig.from_string("tiny", "ACGT")
        res = CudaLocalAssemblyKernel(A100).run([c], 21)
        bases, state = res.right[0]
        assert bases == "" and state.value == "missing"

    def test_contig_with_no_reads(self):
        c = Contig.from_string("bare", decode(
            random_sequence(100, np.random.default_rng(0))))
        res = CudaLocalAssemblyKernel(A100).run([c], 21)
        assert res.right[0][0] == ""
        assert res.profile.inserts == 0

    def test_mixed_degenerate_batch(self):
        """Normal, tiny, and read-less contigs coexist in one launch."""
        contigs = _contigs(n=2)
        contigs.append(Contig.from_string("tiny", "ACGT"))
        bare = Contig.from_string("bare", "ACGT" * 30)
        contigs.append(bare)
        res = CudaLocalAssemblyKernel(A100, policy=PRODUCTION_POLICY).run(
            contigs, 21)
        assert len(res.right) == 4
        assert res.right[0][0] != ""  # normal contigs still extend

    def test_duplicate_reads_heavy_collisions(self):
        """Hundreds of identical reads: every wave is one giant thread
        collision; votes must still be exact."""
        seq = decode(random_sequence(60, np.random.default_rng(5)))
        c = Contig.from_string("dup", seq)
        c.reads = ReadSet([Read.from_strings(f"r{i}", seq) for i in range(200)])
        res = CudaLocalAssemblyKernel(A100, policy=PRODUCTION_POLICY).run([c], 21)
        p = res.profile
        assert p.inserts == 2 * 200 * (60 - 21)  # both end launches
        assert p.atomics >= p.inserts  # one CAS or vote per insert minimum

    def test_periodic_read_intra_wave_collisions(self):
        """A periodic read repeats the same k-mer within one wave: lanes of
        the same warp collide on one slot, exercising the atomicCAS winner
        election plus the CUDA match_any merge path."""
        seq = "ACGT" * 20  # period 4 << warp width
        c = Contig.from_string("per", seq)
        c.reads = ReadSet([Read.from_strings("r0", seq)])
        kern = CudaLocalAssemblyKernel(A100, policy=PRODUCTION_POLICY)
        res = kern.run([c], 8)
        p = res.profile
        # only 4 distinct 8-mers exist; every wave is one big thread collision
        assert p.atomics > p.inserts  # CAS attempts plus same-key merges
        _, state = res.right[0]
        assert state.value == "loop"  # the periodic graph is a cycle


class TestTraceRecording:
    def test_trace_disabled_by_default(self):
        kern = CudaLocalAssemblyKernel(A100)
        kern.run(_contigs(n=1), 21)
        assert kern.last_trace == []

    def test_trace_covers_probes(self):
        contigs = _contigs(n=2)
        kern = CudaLocalAssemblyKernel(A100, policy=PRODUCTION_POLICY)
        kern.record_trace = True
        res = kern.run(contigs, 21)
        total = sum(len(t) for t in kern.last_trace)
        assert total == (res.profile.insert_probe_iterations
                         + res.profile.lookup_probe_iterations)
        assert all(t.dtype == np.int64 for t in kern.last_trace)
