"""Multi-tenant coalescing parity: N fused jobs == N solo runs, bytewise.

The coalescing driver (`run_schedule_coalesced`, DESIGN.md decision #15)
promises that fusing jobs into one megabatch launch wave changes
*nothing observable per job*: extensions, walk states, merged profiles,
overflow/degraded/retried sets, trace-replay measurements, sanitizer
verdicts and per-type event counts must all equal a one-job-at-a-time
run. These tests drive both paths over shared scenarios — including
hypothesis-drawn job mixes, starved-table overflow under every policy,
and the fully instrumented trace + sanitize stack — and require
equality on everything.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.extension import PRODUCTION_POLICY
from repro.errors import HashTableFullError, KernelError
from repro.genomics.simulate import ErrorProfile, ScenarioSpec, simulate_batch
from repro.kernels import CudaLocalAssemblyKernel, HipLocalAssemblyKernel
from repro.kernels.engine import (
    BatchPreparer,
    PrepareCache,
    run_schedule_coalesced,
)
from repro.resilience.checkpoint import profile_to_dict
from repro.simt.device import A100, MI250X


class EventCounter:
    """Counts every event by type; declares no ``handled_events``, so the
    bus forces the gated slot/barrier events on for both paths."""

    def __init__(self):
        self.counts = {}

    def handle(self, event, bus):
        name = type(event).__name__
        self.counts[name] = self.counts.get(name, 0) + 1


class StarvedPreparer(BatchPreparer):
    """Deterministically clamps table capacities to force overflow.

    Unlike the fault injector (per-launch ordinals, unsupported in
    coalesced mode), the clamp depends only on the batch itself, so solo
    and fused runs starve identically.
    """

    cap = 24

    def prepare(self, contigs, bin_, end, k, cache=None):
        batch = super().prepare(contigs, bin_, end, k, cache=cache)
        return dataclasses.replace(
            batch, capacities=np.minimum(batch.capacities, self.cap))


class StarvedCudaKernel(CudaLocalAssemblyKernel):
    preparer_cls = StarvedPreparer


def _contigs(n, seed, error_rate=0.0, depth=6, read_length=80):
    rng = np.random.default_rng(seed)
    spec = ScenarioSpec(contig_length=150, flank_length=60,
                        read_length=read_length, depth=depth, seed_window=40)
    errors = ErrorProfile(error_rate=error_rate,
                          lo_quality_fraction=0.1 if error_rate else 0.0)
    return [sc.contig for sc in simulate_batch(n, spec, rng, errors)]


def _jobs(seeds, n=3, error_rate=0.01, depth=6):
    return [_contigs(n, seed=s, error_rate=error_rate, depth=depth)
            for s in seeds]


def assert_coalesce_parity(kernel_cls, device, jobs, ks, **opts):
    """Fused vs solo: everything observable per job must be identical."""
    solo_counts = EventCounter()
    solo = []
    for job in jobs:
        kern = kernel_cls(device, policy=PRODUCTION_POLICY, **opts)
        kern.add_subscriber(solo_counts)
        try:
            res = kern.run_schedule(job, ks)
        except HashTableFullError as exc:
            solo.append(dict(err=exc))
        else:
            solo.append(dict(err=None, res=res,
                             replay=list(kern.last_replay),
                             report=kern.last_sanitizer_report))
    fused_counts = EventCounter()
    kern = kernel_cls(device, policy=PRODUCTION_POLICY, **opts)
    kern.add_subscriber(fused_counts)
    fused = run_schedule_coalesced(kern, jobs, ks)
    assert len(fused) == len(jobs)
    for s, c in zip(solo, fused):
        if s["err"] is not None:
            # solo raises mid-launch; the coalesced job must surface the
            # exact same reconstructed error instead of a result
            assert c.result is None and c.error is not None
            assert str(c.error) == str(s["err"])
            assert c.error.contig_id == s["err"].contig_id
            assert c.error.k == s["err"].k
            assert c.error.capacity == s["err"].capacity
            assert c.error.probes == s["err"].probes
            continue
        assert c.error is None and c.result is not None
        res = s["res"]
        assert c.result.right == res.right
        assert c.result.left == res.left
        assert c.result.k == res.k
        assert c.result.degraded == res.degraded
        assert c.result.retried == res.retried
        assert (profile_to_dict(c.result.profile)
                == profile_to_dict(res.profile))
        assert c.replay == s["replay"]
        if s["report"] is not None:
            assert c.sanitizer_report is not None
            assert c.sanitizer_report.findings == s["report"].findings
    if all(s["err"] is None for s in solo):
        # an erroring job aborts solo mid-launch, so aggregate event
        # counts are only comparable when every job completes
        assert fused_counts.counts == solo_counts.counts
    return fused


class TestCoalesceParity:
    @settings(max_examples=6, deadline=None)
    @given(n_jobs=st.integers(2, 4), seed=st.integers(0, 2**16),
           err=st.sampled_from([0.0, 0.01, 0.03]))
    def test_hypothesis_parity(self, n_jobs, seed, err):
        jobs = _jobs(range(seed, seed + n_jobs), error_rate=err)
        assert_coalesce_parity(CudaLocalAssemblyKernel, A100, jobs, (21, 33),
                               overflow_policy="drop-contig")

    def test_hip_protocol_parity(self):
        jobs = _jobs((11, 12), n=4, error_rate=0.01)
        assert_coalesce_parity(HipLocalAssemblyKernel, MI250X, jobs,
                               (21, 33, 45), overflow_policy="drop-contig")

    def test_uneven_job_sizes(self):
        """Jobs of different sizes settle at different ks; late waves
        fuse only the still-active jobs."""
        jobs = [_contigs(1, seed=3), _contigs(6, seed=4, error_rate=0.03),
                _contigs(2, seed=5, error_rate=0.01)]
        assert_coalesce_parity(CudaLocalAssemblyKernel, A100, jobs,
                               (21, 33, 45, 55),
                               overflow_policy="drop-contig")

    def test_single_job_wave(self):
        """A degenerate one-job wave is still exactly a solo run."""
        assert_coalesce_parity(CudaLocalAssemblyKernel, A100,
                               _jobs((42,)), (21, 33),
                               overflow_policy="drop-contig")

    def test_trace_and_sanitizer_parity(self):
        """Full instrumentation: byte-accurate traced traffic plus every
        sanitizer check, fused vs solo."""
        jobs = _jobs((23, 24, 25), error_rate=0.01)
        fused = assert_coalesce_parity(
            CudaLocalAssemblyKernel, A100, jobs, (21, 33),
            memory_model="trace", sanitize="all",
            overflow_policy="drop-contig")
        assert all(c.replay for c in fused)
        assert all(c.sanitizer_report is not None for c in fused)

    def test_overflow_drop_parity(self):
        jobs = _jobs((5, 6, 7), error_rate=0.02, depth=8)
        fused = assert_coalesce_parity(StarvedCudaKernel, A100, jobs,
                                       (21, 33),
                                       overflow_policy="drop-contig")
        assert any(c.result.degraded for c in fused)

    def test_overflow_grow_retry_parity(self):
        jobs = _jobs((5, 6, 7), error_rate=0.02, depth=8)
        fused = assert_coalesce_parity(StarvedCudaKernel, A100, jobs,
                                       (21, 33),
                                       overflow_policy="grow-retry")
        assert any(c.result.retried for c in fused)

    def test_overflow_raise_parity(self):
        """RAISE: each overflowing job yields the exact solo error; jobs
        that would succeed solo are unaffected by failing co-tenants."""
        jobs = _jobs((5, 6, 7), error_rate=0.02, depth=8)
        fused = assert_coalesce_parity(StarvedCudaKernel, A100, jobs,
                                       (21, 33), overflow_policy="raise")
        assert any(c.error is not None for c in fused)

    def test_overflow_instrumented_parity(self):
        """Grow-retry with the full trace + sanitize stack attached."""
        jobs = _jobs((5, 6), error_rate=0.02, depth=8)
        assert_coalesce_parity(StarvedCudaKernel, A100, jobs, (21, 33),
                               overflow_policy="grow-retry",
                               memory_model="trace", sanitize="all")


class TestCoalesceValidation:
    def test_rejects_empty_job_list(self):
        kern = CudaLocalAssemblyKernel(A100)
        with pytest.raises(KernelError, match="at least one job"):
            run_schedule_coalesced(kern, [], (21, 33))

    def test_rejects_empty_job(self):
        kern = CudaLocalAssemblyKernel(A100)
        with pytest.raises(KernelError, match="job 1 has no contigs"):
            run_schedule_coalesced(kern, [_contigs(2, seed=1), []], (21, 33))

    def test_rejects_batch_mutating_fault_kinds(self):
        from repro.resilience import (FaultInjector, FaultKind, FaultPlan,
                                      FaultSpec)
        inj = FaultInjector(FaultPlan(faults=(
            FaultSpec(FaultKind.TABLE_PRESSURE, warps=(0,), capacity=4),)))
        kern = CudaLocalAssemblyKernel(A100, fault_injector=inj)
        with pytest.raises(KernelError, match="table-pressure"):
            run_schedule_coalesced(kern, _jobs((1, 2)), (21, 33))

    def test_rejects_launch_ordinal_scoped_faults(self):
        from repro.resilience import (FaultInjector, FaultKind, FaultPlan,
                                      FaultSpec)
        inj = FaultInjector(FaultPlan(faults=(
            FaultSpec(FaultKind.LAUNCH_FAILURE, launch=3),)))
        kern = CudaLocalAssemblyKernel(A100, fault_injector=inj)
        with pytest.raises(KernelError, match="fingerprint"):
            run_schedule_coalesced(kern, _jobs((1, 2)), (21, 33))

    def test_rejects_misaligned_fingerprints(self):
        from repro.resilience import FaultInjector, FaultPlan
        kern = CudaLocalAssemblyKernel(
            A100, fault_injector=FaultInjector(FaultPlan()))
        with pytest.raises(KernelError, match="fingerprints must align"):
            run_schedule_coalesced(kern, _jobs((1, 2)), (21, 33),
                                   fingerprints=["only-one"])

    def test_fingerprint_scoped_worker_crash_fires_then_clears(self):
        """A fingerprint-matched WORKER_CRASH kills the wave once; after
        the spec is spent the same wave runs clean with solo parity."""
        from repro.resilience import (FaultInjector, FaultKind, FaultPlan,
                                      FaultSpec, InjectedCrashError)
        jobs = _jobs((1, 2))
        inj = FaultInjector(FaultPlan(faults=(
            FaultSpec(FaultKind.WORKER_CRASH, fingerprint="fpB"),)))
        kern = CudaLocalAssemblyKernel(A100, fault_injector=inj,
                                       overflow_policy="drop-contig")
        with pytest.raises(InjectedCrashError, match="worker crash"):
            run_schedule_coalesced(kern, jobs, (21, 33),
                                   fingerprints=["fpA", "fpB"])
        assert inj.counts() == {"worker-crash": 1}
        fused = run_schedule_coalesced(kern, jobs, (21, 33),
                                       fingerprints=["fpA", "fpB"])
        clean = CudaLocalAssemblyKernel(A100, overflow_policy="drop-contig")
        for job, c in zip(jobs, fused):
            solo = clean.run_schedule(job, (21, 33))
            assert c.result.right == solo.right
            assert c.result.left == solo.left

    def test_fingerprint_scoped_crash_skips_non_matching_wave(self):
        from repro.resilience import (FaultInjector, FaultKind, FaultPlan,
                                      FaultSpec)
        jobs = _jobs((1, 2))
        inj = FaultInjector(FaultPlan(faults=(
            FaultSpec(FaultKind.WORKER_CRASH, fingerprint="elsewhere"),)))
        kern = CudaLocalAssemblyKernel(A100, fault_injector=inj,
                                       overflow_policy="drop-contig")
        fused = run_schedule_coalesced(kern, jobs, (21, 33),
                                       fingerprints=["fpA", "fpB"])
        assert all(c.error is None for c in fused)
        assert inj.counts() == {}

    def test_wave_launch_failure_is_transient(self):
        from repro.errors import BackendLaunchError
        from repro.resilience import (FaultInjector, FaultKind, FaultPlan,
                                      FaultSpec)
        jobs = _jobs((1, 2))
        inj = FaultInjector(FaultPlan(faults=(
            FaultSpec(FaultKind.LAUNCH_FAILURE, fingerprint="fpA"),)))
        kern = CudaLocalAssemblyKernel(A100, fault_injector=inj,
                                       overflow_policy="drop-contig")
        with pytest.raises(BackendLaunchError, match="transient"):
            run_schedule_coalesced(kern, jobs, (21, 33),
                                   fingerprints=["fpA", "fpB"])
        # transient: the retry succeeds once the spec is spent
        fused = run_schedule_coalesced(kern, jobs, (21, 33),
                                       fingerprints=["fpA", "fpB"])
        assert all(c.error is None for c in fused)

    def test_rejects_misaligned_prep_caches(self):
        kern = CudaLocalAssemblyKernel(A100)
        with pytest.raises(KernelError, match="prep_caches"):
            run_schedule_coalesced(kern, _jobs((1, 2)), (21, 33),
                                   prep_caches=[PrepareCache()])

    def test_shared_scoped_caches(self):
        """Scoped views of one shared store: per-job counters still
        reflect each job's own reuse; results stay solo-identical."""
        jobs = _jobs((8, 9))
        kern = CudaLocalAssemblyKernel(A100, overflow_policy="drop-contig")
        store = PrepareCache(maxsize=64)
        scopes = [store.scoped(f"job{i}") for i in range(len(jobs))]
        fused = run_schedule_coalesced(kern, jobs, (21, 33),
                                       prep_caches=scopes)
        solo = []
        for job in jobs:
            k2 = CudaLocalAssemblyKernel(A100, overflow_policy="drop-contig")
            solo.append(k2.run_schedule(job, (21, 33)))
        for s, c in zip(solo, fused):
            assert c.result.right == s.right
            assert c.result.left == s.left
            # distinct scopes share no keys, so counters match solo too
            assert (profile_to_dict(c.result.profile)
                    == profile_to_dict(s.profile))
