"""The exact-replay memory model: TraceReplaySubscriber + EventBus.wants."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.genomics.contig import Contig
from repro.genomics.dna import decode, random_sequence
from repro.genomics.reads import Read, ReadSet
from repro.genomics.simulate import PERFECT_READS, ScenarioSpec, simulate_batch
from repro.kernels import CudaLocalAssemblyKernel, HipLocalAssemblyKernel
from repro.kernels.engine import (
    EventBus,
    ProbeIteration,
    SlotAccess,
    TraceReplaySubscriber,
    TrafficSubscriber,
    replay_l2_hit_rate,
)
from repro.simt.device import A100, MI250X
from repro.simt.memory import CacheHierarchy

SPEC = ScenarioSpec(contig_length=160, flank_length=50, read_length=80,
                    depth=6, seed_window=40)


def _contigs(n=3, seed=5):
    rng = np.random.default_rng(seed)
    return [sc.contig for sc in simulate_batch(n, SPEC, rng, PERFECT_READS)]


class TestTraceMemoryModel:
    def test_rejects_unknown_model(self):
        with pytest.raises(KernelError):
            CudaLocalAssemblyKernel(A100, memory_model="exact-ish")

    def test_trace_mode_changes_no_result(self):
        contigs = _contigs()
        analytic = CudaLocalAssemblyKernel(A100).run(contigs, 21)
        kern = CudaLocalAssemblyKernel(A100, memory_model="trace")
        traced = kern.run(contigs, 21)
        assert tuple(traced.right) == tuple(analytic.right)
        assert tuple(traced.left) == tuple(analytic.left)
        assert traced.profile.intops == analytic.profile.intops
        assert traced.profile.hbm_bytes == analytic.profile.hbm_bytes

    def test_replay_matches_scalar_hierarchy_per_launch(self):
        """The subscriber's batched replay == the seed scalar hierarchy
        fed the recorded trace of the same launch (atomic semantics)."""
        contigs = _contigs()
        kern = CudaLocalAssemblyKernel(A100, memory_model="trace")
        kern.record_trace = True
        kern.run(contigs, 21)
        assert kern.last_replay
        # traces with zero accesses record no array; align on the rest
        nonzero = [s for s in kern.last_replay if s.accesses]
        assert len(nonzero) == len(kern.last_trace)
        for stats, trace in zip(nonzero, kern.last_trace):
            scalar = CacheHierarchy(A100)
            counts = scalar.access_trace(trace, atomic=True)
            assert stats.accesses == trace.size
            assert (stats.l1, stats.l2, stats.hbm) == (
                counts["l1"], counts["l2"], counts["hbm"])
            assert stats.hbm_bytes == scalar.hbm_bytes
            assert stats.l1 == 0  # atomics bypass the L1

    def test_cold_lines_and_hit_rates(self):
        kern = CudaLocalAssemblyKernel(A100, memory_model="trace")
        kern.run(_contigs(), 21)
        for s in kern.last_replay:
            assert 0 < s.cold_lines <= s.accesses
            assert s.hbm >= s.cold_lines  # cold lines all missed
            assert 0.0 <= s.l2_hit_rate <= s.warm_l2_hit_rate <= 1.0
        sub = kern.last_replay_subscriber
        assert sub.total_accesses == sum(s.accesses for s in kern.last_replay)
        assert 0.0 <= sub.l2_hit_rate <= 1.0
        assert sub.suggested_l2_churn() >= 1.0

    def test_run_schedule_accumulates_launches(self):
        """A fork at k=21 retries at k=33; the replay log keeps both ks
        (the Figure 1 construction, as in the run_schedule tests)."""
        rng = np.random.default_rng(3)
        core = decode(random_sequence(25, rng))
        pre = [decode(random_sequence(60, rng)) for _ in range(2)]
        post = [decode(random_sequence(60, rng)) for _ in range(2)]
        contig = Contig.from_string("forky", pre[0] + core)
        reads = ReadSet()
        for i in range(4):
            reads.append(Read.from_strings(f"a{i}", pre[0] + core + post[0]))
            reads.append(Read.from_strings(f"b{i}", pre[1] + core + post[1]))
        contig.reads = reads
        kern = CudaLocalAssemblyKernel(A100, memory_model="trace")
        kern.run_schedule([contig], (21, 33))
        assert {s.k for s in kern.last_replay} == {21, 33}
        assert replay_l2_hit_rate(kern.last_replay) >= 0.0

    def test_small_l2_misses_more(self):
        """The paper's cache story holds in exact replay: the MI250X's
        8 MB L2 serves fewer probes than the A100's 40 MB L2."""
        contigs = _contigs(n=6, seed=11)
        big = CudaLocalAssemblyKernel(A100, memory_model="trace")
        big.run(contigs, 21)
        small = HipLocalAssemblyKernel(
            MI250X.with_(l2=MI250X.l2.__class__(64 * 1024, 64, 250)),
            memory_model="trace")
        small.run(contigs, 21)
        assert (replay_l2_hit_rate(small.last_replay, warm=False)
                < replay_l2_hit_rate(big.last_replay, warm=False))


class TestEventBusWants:
    def test_empty_bus_wants_nothing(self):
        assert not EventBus().wants(SlotAccess)

    def test_declared_subscriber_filters(self):
        bus = EventBus()
        bus.subscribe(TrafficSubscriber(A100))
        assert bus.wants(ProbeIteration)
        assert not bus.wants(SlotAccess)

    def test_undeclared_subscriber_wants_everything(self):
        bus = EventBus()

        class Spy:
            def handle(self, event, bus):
                pass

        bus.subscribe(Spy())
        assert bus.wants(SlotAccess)

    def test_subscribe_invalidates_the_cache(self):
        bus = EventBus()
        assert not bus.wants(SlotAccess)
        bus.subscribe(TraceReplaySubscriber(A100))
        assert bus.wants(SlotAccess)

    def test_emit_on_empty_bus_is_a_noop(self):
        EventBus().emit(object())  # must not raise

    def test_slot_access_reaches_undeclared_subscribers(self):
        """An external subscriber without a declaration still sees the
        hot-loop SlotAccess stream (the guard must not starve it)."""
        seen = []

        class Spy:
            def handle(self, event, bus):
                if isinstance(event, SlotAccess):
                    seen.append(event.slots.size)

        kern = CudaLocalAssemblyKernel(A100)
        kern.add_subscriber(Spy())
        kern.run(_contigs(), 21)
        assert sum(seen) > 0
