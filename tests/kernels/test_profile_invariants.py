"""Property-based invariants of the kernel profiles.

Whatever the workload, the measured counters must satisfy the structural
relations of the execution model — these catch accounting bugs that
functional tests cannot see.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.extension import PRODUCTION_POLICY
from repro.genomics.simulate import ErrorProfile, ScenarioSpec, simulate_batch
from repro.kernels import CudaLocalAssemblyKernel, HipLocalAssemblyKernel
from repro.simt.device import A100, MI250X


def _run(seed, kern_cls=CudaLocalAssemblyKernel, device=A100, n=3):
    rng = np.random.default_rng(seed)
    spec = ScenarioSpec(contig_length=150, flank_length=50, read_length=70,
                        depth=int(rng.integers(2, 10)), seed_window=40)
    contigs = [sc.contig for sc in
               simulate_batch(n, spec, rng, ErrorProfile(error_rate=0.003))]
    kern = kern_cls(device, policy=PRODUCTION_POLICY)
    return kern.run(contigs, 21)


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 10_000))
def test_intops_partition(seed):
    p = _run(seed).profile
    assert p.intops == p.construct_intops + p.walk_intops


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 10_000))
def test_lane_bounded_by_warp_instructions(seed):
    p = _run(seed).profile
    assert 0 < p.lane_instructions <= p.warp_instructions * p.warp_size
    assert 0.0 < p.active_lane_fraction <= 1.0


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 10_000))
def test_probe_iterations_cover_operations(seed):
    p = _run(seed).profile
    assert p.insert_probe_iterations >= p.inserts
    assert p.lookup_probe_iterations >= p.lookups


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 10_000))
def test_extension_bases_equal_walk_steps(seed):
    res = _run(seed)
    p = res.profile
    assert p.extension_bases == p.walk_steps
    assert p.extension_bases == sum(
        len(b) for side in (res.right, res.left) for b, _ in side)


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 10_000))
def test_memory_accounting_positive_and_consistent(seed):
    p = _run(seed).profile
    assert p.hbm_bytes > 0
    assert p.l1_hit_bytes >= 0 and p.l2_hit_bytes >= 0
    assert 0.0 <= p.cache_hit_fraction < 1.0
    assert p.construct_chain_cycles > 0
    assert p.walk_chain_cycles >= 0


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 10_000))
def test_hip_wider_warp_fewer_waves_lower_activity(seed):
    """Same workload on 32- vs 64-wide warps: the wider warp issues fewer
    warp-instructions but wastes more lanes."""
    p32 = _run(seed, CudaLocalAssemblyKernel, A100).profile
    p64 = _run(seed, HipLocalAssemblyKernel, MI250X).profile
    assert p64.warp_instructions < p32.warp_instructions
    assert p64.active_lane_fraction < p32.active_lane_fraction
    # identical functional work
    assert p64.inserts == p32.inserts
    assert p64.extension_bases == p32.extension_bases


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 10_000))
def test_launch_count_even(seed):
    """One right + one left launch per bin."""
    p = _run(seed).profile
    assert p.kernels_launched % 2 == 0
    assert p.kernels_launched >= 2
