"""Prepare-stage split + flatten reuse across the k-schedule."""

import numpy as np
import pytest

from repro.core.binning import bin_contigs
from repro.genomics.contig import End
from repro.genomics.simulate import PERFECT_READS, ScenarioSpec, simulate_batch
from repro.kernels import CudaLocalAssemblyKernel
from repro.kernels.engine import BatchPreparer, PrepareCache
from repro.simt.device import A100

SPEC = ScenarioSpec(contig_length=200, flank_length=60, read_length=90,
                    depth=8, seed_window=50)


def _contigs(n=6, seed=3):
    rng = np.random.default_rng(seed)
    return [sc.contig for sc in simulate_batch(n, SPEC, rng, PERFECT_READS)]


def _forky_contigs(n=3, seed=5):
    """Contigs whose right walks fork at k=21 (so the schedule iterates)."""
    from repro.genomics.contig import Contig
    from repro.genomics.dna import decode, random_sequence
    from repro.genomics.reads import Read, ReadSet

    rng = np.random.default_rng(seed)
    out = []
    for j in range(n):
        core = decode(random_sequence(25, rng))
        a_pre = decode(random_sequence(60, rng))
        b_pre = decode(random_sequence(60, rng))
        a_post = decode(random_sequence(60, rng))
        b_post = decode(random_sequence(60, rng))
        contig = Contig.from_string(f"forky{j}", a_pre + core)
        reads = ReadSet()
        for i in range(4):
            reads.append(Read.from_strings(f"a{j}.{i}", a_pre + core + a_post))
            reads.append(Read.from_strings(f"b{j}.{i}", b_pre + core + b_post))
        contig.reads = reads
        out.append(contig)
    return out


def _batches_equal(a, b):
    assert a.contig_ids == b.contig_ids
    for name in ("codes", "quals", "ins_warp", "ins_home", "ins_fp",
                 "ins_ext", "ins_hi", "seeds", "seed_valid", "capacities",
                 "read_bytes_per_warp"):
        np.testing.assert_array_equal(getattr(a, name), getattr(b, name),
                                      err_msg=name)


class TestPrepareSplit:
    """flatten + finish must equal the one-shot prepare, for both ends."""

    @pytest.mark.parametrize("end", [End.RIGHT, End.LEFT])
    @pytest.mark.parametrize("k", [21, 33])
    def test_cached_flatten_reproduces_fresh_prepare(self, end, k):
        contigs = _contigs()
        bins = bin_contigs(contigs, k, 2.0, None, 0.7)
        prep = BatchPreparer(seed=0)
        cache = PrepareCache()
        for b in bins:
            fresh = prep.prepare(contigs, b, end, k)
            warm = prep.prepare(contigs, b, end, k, cache=cache)  # miss
            again = prep.prepare(contigs, b, end, k, cache=cache)  # hit
            _batches_equal(fresh, warm)
            _batches_equal(fresh, again)
        assert cache.misses == len(bins)
        assert cache.hits == len(bins)

    def test_flatten_is_k_independent(self):
        contigs = _contigs(seed=7)
        bins = bin_contigs(contigs, 21, 2.0, None, 0.7)
        prep = BatchPreparer(seed=0)
        cache = PrepareCache()
        b21 = prep.prepare(contigs, bins[0], End.RIGHT, 21, cache=cache)
        b33 = prep.prepare(contigs, bins[0], End.RIGHT, 33, cache=cache)
        # the second k reuses the flatten: one entry, one hit
        assert len(cache) == 1
        assert cache.hits == 1
        # per-k arrays genuinely differ across k...
        assert b21.seeds.shape[1] == 21 and b33.seeds.shape[1] == 33
        assert b21.ins_warp.size > b33.ins_warp.size
        # ...while the shared flat stream is the same object
        assert b21.codes is b33.codes

    def test_upper_bound_capacities_are_k_independent(self):
        contigs = _contigs(seed=8)
        bins = bin_contigs(contigs, 21, 2.0, None, 0.7)
        prep = BatchPreparer(seed=0)
        b21 = prep.prepare(contigs, bins[0], End.RIGHT, 21)
        b33 = prep.prepare(contigs, bins[0], End.RIGHT, 33)
        np.testing.assert_array_equal(b21.capacities, b33.capacities)


class TestScheduleReuse:
    def test_run_schedule_reuses_flattens_across_k(self):
        contigs = _forky_contigs()
        kern = CudaLocalAssemblyKernel(A100)
        res = kern.run_schedule(contigs, (21, 33))
        assert res.k == 33  # the forks forced the second k to run
        cache = kern.last_prep_cache
        assert cache is not None
        # every (bin, end) flattened exactly once; the k=33 pass hit
        assert cache.misses == len(cache)
        assert cache.hits > 0

    def test_schedule_output_identical_with_and_without_cache(self):
        contigs = _forky_contigs(seed=6)
        cached = CudaLocalAssemblyKernel(A100).run_schedule(contigs, (21, 33))
        uncached_kern = CudaLocalAssemblyKernel(A100)
        merged = None
        # replay the schedule through bare run() calls (no cache passed)
        from repro.kernels.engine import iterate_k_schedule

        last_k, merged, right, left = iterate_k_schedule(
            lambda k: uncached_kern.run(contigs, k), len(contigs), (21, 33))
        assert cached.k == last_k
        assert tuple(cached.right) == tuple(right)
        assert tuple(cached.left) == tuple(left)
        assert cached.profile.intops == merged.intops
        assert cached.profile.hbm_bytes == merged.hbm_bytes
