"""Prepare-stage split + flatten reuse across the k-schedule."""

import numpy as np
import pytest

from repro.core.binning import bin_contigs
from repro.genomics.contig import End
from repro.genomics.simulate import PERFECT_READS, ScenarioSpec, simulate_batch
from repro.kernels import CudaLocalAssemblyKernel
from repro.kernels.engine import BatchPreparer, PrepareCache
from repro.simt.device import A100

SPEC = ScenarioSpec(contig_length=200, flank_length=60, read_length=90,
                    depth=8, seed_window=50)


def _contigs(n=6, seed=3):
    rng = np.random.default_rng(seed)
    return [sc.contig for sc in simulate_batch(n, SPEC, rng, PERFECT_READS)]


def _forky_contigs(n=3, seed=5):
    """Contigs whose right walks fork at k=21 (so the schedule iterates)."""
    from repro.genomics.contig import Contig
    from repro.genomics.dna import decode, random_sequence
    from repro.genomics.reads import Read, ReadSet

    rng = np.random.default_rng(seed)
    out = []
    for j in range(n):
        core = decode(random_sequence(25, rng))
        a_pre = decode(random_sequence(60, rng))
        b_pre = decode(random_sequence(60, rng))
        a_post = decode(random_sequence(60, rng))
        b_post = decode(random_sequence(60, rng))
        contig = Contig.from_string(f"forky{j}", a_pre + core)
        reads = ReadSet()
        for i in range(4):
            reads.append(Read.from_strings(f"a{j}.{i}", a_pre + core + a_post))
            reads.append(Read.from_strings(f"b{j}.{i}", b_pre + core + b_post))
        contig.reads = reads
        out.append(contig)
    return out


def _batches_equal(a, b):
    assert a.contig_ids == b.contig_ids
    for name in ("codes", "quals", "ins_warp", "ins_home", "ins_fp",
                 "ins_ext", "ins_hi", "seeds", "seed_valid", "capacities",
                 "read_bytes_per_warp"):
        np.testing.assert_array_equal(getattr(a, name), getattr(b, name),
                                      err_msg=name)


class TestPrepareSplit:
    """flatten + finish must equal the one-shot prepare, for both ends."""

    @pytest.mark.parametrize("end", [End.RIGHT, End.LEFT])
    @pytest.mark.parametrize("k", [21, 33])
    def test_cached_flatten_reproduces_fresh_prepare(self, end, k):
        contigs = _contigs()
        bins = bin_contigs(contigs, k, 2.0, None, 0.7)
        prep = BatchPreparer(seed=0)
        cache = PrepareCache()
        for b in bins:
            fresh = prep.prepare(contigs, b, end, k)
            warm = prep.prepare(contigs, b, end, k, cache=cache)  # miss
            again = prep.prepare(contigs, b, end, k, cache=cache)  # hit
            _batches_equal(fresh, warm)
            _batches_equal(fresh, again)
        assert cache.misses == len(bins)
        assert cache.hits == len(bins)

    def test_flatten_is_k_independent(self):
        contigs = _contigs(seed=7)
        bins = bin_contigs(contigs, 21, 2.0, None, 0.7)
        prep = BatchPreparer(seed=0)
        cache = PrepareCache()
        b21 = prep.prepare(contigs, bins[0], End.RIGHT, 21, cache=cache)
        b33 = prep.prepare(contigs, bins[0], End.RIGHT, 33, cache=cache)
        # the second k reuses the flatten: one entry, one hit
        assert len(cache) == 1
        assert cache.hits == 1
        # per-k arrays genuinely differ across k...
        assert b21.seeds.shape[1] == 21 and b33.seeds.shape[1] == 33
        assert b21.ins_warp.size > b33.ins_warp.size
        # ...while the shared flat stream is the same object
        assert b21.codes is b33.codes

    def test_upper_bound_capacities_are_k_independent(self):
        contigs = _contigs(seed=8)
        bins = bin_contigs(contigs, 21, 2.0, None, 0.7)
        prep = BatchPreparer(seed=0)
        b21 = prep.prepare(contigs, bins[0], End.RIGHT, 21)
        b33 = prep.prepare(contigs, bins[0], End.RIGHT, 33)
        np.testing.assert_array_equal(b21.capacities, b33.capacities)


class TestScheduleReuse:
    def test_run_schedule_reuses_flattens_across_k(self):
        contigs = _forky_contigs()
        kern = CudaLocalAssemblyKernel(A100)
        res = kern.run_schedule(contigs, (21, 33))
        assert res.k == 33  # the forks forced the second k to run
        cache = kern.last_prep_cache
        assert cache is not None
        # every (bin, end) flattened exactly once; the k=33 pass hit
        assert cache.misses == len(cache)
        assert cache.hits > 0

    def test_schedule_output_identical_with_and_without_cache(self):
        contigs = _forky_contigs(seed=6)
        cached = CudaLocalAssemblyKernel(A100).run_schedule(contigs, (21, 33))
        uncached_kern = CudaLocalAssemblyKernel(A100)
        merged = None
        # replay the schedule through bare run() calls (no cache passed)
        from repro.kernels.engine import iterate_k_schedule

        last_k, merged, right, left = iterate_k_schedule(
            lambda k: uncached_kern.run(contigs, k), len(contigs), (21, 33))
        assert cached.k == last_k
        assert tuple(cached.right) == tuple(right)
        assert tuple(cached.left) == tuple(left)
        assert cached.profile.intops == merged.intops
        assert cached.profile.hbm_bytes == merged.hbm_bytes


class TestSubsetBatchValidation:
    """subset_batch edge cases: duplicates and out-of-range ids used to
    silently misalign capacities; now they raise."""

    def _batch(self, n=5, k=21):
        from repro.kernels.engine import BatchPreparer

        contigs = _contigs(n=n, seed=9)
        prep = BatchPreparer()
        bins = bin_contigs(contigs, k)
        return prep.prepare(contigs, bins[0], End.RIGHT, k)

    def test_empty_subset_rejected(self):
        from repro.errors import KernelError
        from repro.kernels.engine import subset_batch

        with pytest.raises(KernelError, match="at least one warp id"):
            subset_batch(self._batch(), [])

    def test_out_of_range_rejected(self):
        from repro.errors import KernelError
        from repro.kernels.engine import subset_batch

        batch = self._batch()
        with pytest.raises(KernelError, match="out of range"):
            subset_batch(batch, [0, batch.n_warps])
        with pytest.raises(KernelError, match="out of range"):
            subset_batch(batch, [-1])

    def test_duplicates_rejected(self):
        from repro.errors import KernelError
        from repro.kernels.engine import subset_batch

        with pytest.raises(KernelError, match="duplicate warp ids"):
            subset_batch(self._batch(), [2, 1, 2])

    def test_full_subset_roundtrips(self):
        from repro.kernels.engine import subset_batch

        batch = self._batch()
        again = subset_batch(batch, list(range(batch.n_warps)))
        _batches_equal(batch, again)

    def test_reordered_ids_match_sorted(self):
        """Ids in any order produce the same (warp-sorted) batch, with
        capacities following their warp."""
        from repro.kernels.engine import subset_batch

        batch = self._batch()
        caps = [7, 11, 13]
        fwd = subset_batch(batch, [1, 3, 4], caps)
        rev = subset_batch(batch, [4, 1, 3], [13, 7, 11])
        _batches_equal(fwd, rev)
        np.testing.assert_array_equal(fwd.capacities, [7, 11, 13])


class TestConcatBatches:
    def _prepare(self, n, seed, k=21):
        from repro.kernels.engine import BatchPreparer

        contigs = _contigs(n=n, seed=seed)
        prep = BatchPreparer()
        bins = bin_contigs(contigs, k)
        return prep.prepare(contigs, bins[0], End.RIGHT, k)

    def test_fused_layout(self):
        from repro.kernels.engine import concat_batches, subset_batch

        a = self._prepare(3, seed=1)
        b = self._prepare(2, seed=2)
        fused, base = concat_batches([a, b])
        np.testing.assert_array_equal(base, [0, a.n_warps, a.n_warps + b.n_warps])
        assert fused.n_warps == a.n_warps + b.n_warps
        assert fused.contig_ids == a.contig_ids + b.contig_ids
        np.testing.assert_array_equal(
            fused.capacities, np.concatenate([a.capacities, b.capacities]))
        np.testing.assert_array_equal(
            fused.ins_warp,
            np.concatenate([a.ins_warp, b.ins_warp + a.n_warps]))
        # insertion payloads concatenate unchanged
        for name in ("ins_home", "ins_fp", "ins_ext", "ins_hi"):
            np.testing.assert_array_equal(
                getattr(fused, name),
                np.concatenate([getattr(a, name), getattr(b, name)]),
                err_msg=name)

    def test_requires_matching_k(self):
        from repro.errors import KernelError
        from repro.kernels.engine import concat_batches

        with pytest.raises(KernelError, match="different k"):
            concat_batches([self._prepare(2, seed=1, k=21),
                            self._prepare(2, seed=2, k=33)])

    def test_requires_batches(self):
        from repro.errors import KernelError
        from repro.kernels.engine import concat_batches

        with pytest.raises(KernelError, match="at least one batch"):
            concat_batches([])


class TestPrepareCacheLRU:
    def _flat(self, tag):
        # any payload object works; the cache never inspects it
        return ("flat", tag)

    def test_eviction_order_and_counters(self):
        cache = PrepareCache(maxsize=2)
        cache._put(("a",), self._flat("a"))
        cache._put(("b",), self._flat("b"))
        assert cache._get(("a",)) is not None   # refresh "a"
        cache._put(("c",), self._flat("c"))     # evicts LRU "b"
        assert cache._get(("b",)) is None
        assert cache._get(("a",)) is not None
        assert cache._get(("c",)) is not None
        assert (cache.hits, cache.misses, cache.evictions) == (3, 1, 1)
        assert len(cache) == 2

    def test_maxsize_validated(self):
        from repro.errors import KernelError

        with pytest.raises(KernelError, match="maxsize"):
            PrepareCache(maxsize=0)

    def test_scoped_views_isolate_and_attribute(self):
        store = PrepareCache(maxsize=2)
        t1, t2 = store.scoped("t1"), store.scoped("t2")
        assert store.scoped("t1") is t1         # stable per scope
        key = lambda: None
        t1.store._put(("t1", "x"), self._flat(1))
        # same logical key under another scope is a distinct entry
        assert store._get(("t2", "x")) is None
        # pressure from t2 evicts t1's LRU entry, attributed to t1
        t2.store._put(("t2", "x"), self._flat(2))
        t2.store._put(("t2", "y"), self._flat(3))
        assert t1.evictions == 1
        assert t2.evictions == 0
        assert store.evictions == 1

    def test_scope_local_hit_miss_counters(self):
        from repro.kernels.engine import BatchPreparer

        contigs = _contigs(n=3, seed=12)
        bins = bin_contigs(contigs, 21)
        prep = BatchPreparer()
        store = PrepareCache()
        s1, s2 = store.scoped("j1"), store.scoped("j2")
        prep.prepare(contigs, bins[0], End.RIGHT, 21, cache=s1)
        prep.prepare(contigs, bins[0], End.RIGHT, 33, cache=s1)  # warm hit
        prep.prepare(contigs, bins[0], End.RIGHT, 21, cache=s2)  # own miss
        assert (s1.hits, s1.misses) == (1, 1)
        assert (s2.hits, s2.misses) == (0, 1)
        assert (store.hits, store.misses) == (1, 2)

    def test_schedule_profile_exposes_cache_counters(self):
        contigs = _forky_contigs(seed=8)
        kern = CudaLocalAssemblyKernel(A100)
        res = kern.run_schedule(contigs, (21, 33))
        cache = kern.last_prep_cache
        assert res.profile.prep_cache_hits == cache.hits > 0
        assert res.profile.prep_cache_misses == cache.misses > 0
        assert res.profile.prep_cache_evictions == cache.evictions == 0
