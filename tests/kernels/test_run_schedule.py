"""Tests for the on-device iterative k schedule (Figures 2/4)."""

import numpy as np
import pytest

from repro.core.extension import PRODUCTION_POLICY, WalkState
from repro.errors import KernelError
from repro.genomics.contig import Contig
from repro.genomics.dna import decode, random_sequence
from repro.genomics.reads import Read, ReadSet
from repro.genomics.simulate import PERFECT_READS, ScenarioSpec, simulate_batch
from repro.kernels import CudaLocalAssemblyKernel
from repro.simt.device import A100


def _contigs(n=4, seed=17):
    rng = np.random.default_rng(seed)
    spec = ScenarioSpec(contig_length=200, flank_length=70, read_length=90,
                        depth=8, seed_window=50)
    return [sc.contig for sc in simulate_batch(n, spec, rng, PERFECT_READS)]


def _fork_contig(rng):
    """A contig whose right walk forks at k=21 but resolves at k=33
    (the Figure 1 construction, as in the pipeline tests)."""
    core = decode(random_sequence(25, rng))
    a_pre = decode(random_sequence(60, rng))
    b_pre = decode(random_sequence(60, rng))
    a_post = decode(random_sequence(60, rng))
    b_post = decode(random_sequence(60, rng))
    contig = Contig.from_string("forky", a_pre + core)
    reads = ReadSet()
    for i in range(4):
        reads.append(Read.from_strings(f"a{i}", a_pre + core + a_post))
        reads.append(Read.from_strings(f"b{i}", b_pre + core + b_post))
    contig.reads = reads
    return contig, a_post


class TestRunSchedule:
    def test_single_k_equals_run(self):
        contigs = _contigs()
        kern = CudaLocalAssemblyKernel(A100, policy=PRODUCTION_POLICY)
        a = kern.run(contigs, 21)
        b = kern.run_schedule(contigs, (21,))
        assert a.right == b.right and a.left == b.left
        assert b.profile.inserts == a.profile.inserts

    def test_accepted_walks_do_not_rerun(self):
        """If every end settles at k=21, later ks are skipped entirely."""
        contigs = _contigs()
        kern = CudaLocalAssemblyKernel(A100, policy=PRODUCTION_POLICY)
        single = kern.run(contigs, 21)
        assert all(s is not WalkState.FORK for _, s in single.right)
        assert all(s is not WalkState.FORK for _, s in single.left)
        sched = kern.run_schedule(contigs, (21, 33, 55))
        assert sched.profile.inserts == single.profile.inserts  # one k ran
        assert sched.k == 21

    def test_fork_resolved_by_next_k(self):
        rng = np.random.default_rng(3)
        contig, a_post = _fork_contig(rng)
        kern = CudaLocalAssemblyKernel(A100, policy=PRODUCTION_POLICY)
        at21 = kern.run([contig], 21)
        assert at21.right[0][1] is WalkState.FORK
        sched = kern.run_schedule([contig], (21, 33))
        bases, state = sched.right[0]
        assert state is not WalkState.FORK
        assert bases and a_post.startswith(bases)
        assert sched.k == 33

    def test_profiles_accumulate_across_ks(self):
        rng = np.random.default_rng(4)
        contig, _ = _fork_contig(rng)
        kern = CudaLocalAssemblyKernel(A100, policy=PRODUCTION_POLICY)
        p21 = kern.run([contig], 21).profile
        sched = kern.run_schedule([contig], (21, 33))
        assert sched.profile.inserts > p21.inserts  # both ks constructed
        assert sched.profile.kernels_launched > p21.kernels_launched

    def test_unresolved_fork_keeps_longest(self):
        """A tie that never resolves still reports its best extension."""
        rng = np.random.default_rng(11)
        seq = decode(random_sequence(40, rng))  # aperiodic
        contig = Contig.from_string("tie", seq)
        reads = ReadSet()
        for i in range(3):
            reads.append(Read.from_strings(f"x{i}", seq + "AAAAAACGCGT"))
            reads.append(Read.from_strings(f"y{i}", seq + "CCCCCTTGACG"))
        contig.reads = reads
        kern = CudaLocalAssemblyKernel(A100, policy=PRODUCTION_POLICY)
        sched = kern.run_schedule([contig], (21, 33))
        bases, state = sched.right[0]
        assert state is WalkState.FORK  # both ks fork immediately

    def test_rejects_bad_schedule(self):
        kern = CudaLocalAssemblyKernel(A100)
        with pytest.raises(KernelError):
            kern.run_schedule(_contigs(n=1), ())
        with pytest.raises(KernelError):
            kern.run_schedule(_contigs(n=1), (33, 21))
