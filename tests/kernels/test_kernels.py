"""Functional and profiling tests for the three SIMT kernel ports."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.extension import PRODUCTION_POLICY
from repro.core.reference import reference_extend
from repro.errors import KernelError
from repro.genomics.contig import End
from repro.genomics.simulate import PERFECT_READS, ScenarioSpec, simulate_batch
from repro.kernels import (
    CudaLocalAssemblyKernel,
    HipLocalAssemblyKernel,
    SyclLocalAssemblyKernel,
    kernel_for_device,
)
from repro.simt.device import A100, MAX1550, MI250X

SPEC = ScenarioSpec(contig_length=200, flank_length=60, read_length=90,
                    depth=8, seed_window=50)
KERNELS = [
    (CudaLocalAssemblyKernel, A100),
    (HipLocalAssemblyKernel, MI250X),
    (SyclLocalAssemblyKernel, MAX1550),
]


def _contigs(n=5, seed=3, spec=SPEC):
    rng = np.random.default_rng(seed)
    return [sc.contig for sc in simulate_batch(n, spec, rng, PERFECT_READS)]


class TestFunctionalEquivalence:
    """All three ports must produce exactly the CPU reference's extensions."""

    @pytest.mark.parametrize("kern_cls,dev", KERNELS,
                             ids=["cuda", "hip", "sycl"])
    def test_matches_reference(self, kern_cls, dev):
        contigs = _contigs()
        k = 21
        res = kern_cls(dev).run(contigs, k)
        for i, c in enumerate(contigs):
            ref = reference_extend(c, k)
            assert res.right[i][0] == ref[End.RIGHT][0]
            assert res.right[i][1] == ref[End.RIGHT][1]
            assert res.left[i][0] == ref[End.LEFT][0]
            assert res.left[i][1] == ref[End.LEFT][1]

    def test_ports_agree_with_each_other(self):
        contigs = _contigs(seed=4)
        outs = []
        for kern_cls, dev in KERNELS:
            res = kern_cls(dev).run(contigs, 21)
            outs.append((tuple(res.right), tuple(res.left)))
        assert outs[0] == outs[1] == outs[2]

    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_cuda_matches_reference(self, seed):
        contigs = _contigs(n=2, seed=seed)
        res = CudaLocalAssemblyKernel(A100, policy=PRODUCTION_POLICY).run(contigs, 21)
        for i, c in enumerate(contigs):
            ref = reference_extend(c, 21, policy=PRODUCTION_POLICY)
            assert res.right[i][0] == ref[End.RIGHT][0]

    def test_respects_read_end_hints(self):
        contigs = _contigs(n=1, seed=9)
        c = contigs[0]
        # assign all reads to the RIGHT end: left walk must see nothing
        c.read_end_hints = [End.RIGHT] * len(c.reads)
        res = CudaLocalAssemblyKernel(A100).run(contigs, 21)
        assert res.left[0][0] == ""
        assert res.right[0][0] != ""


class TestProfiles:
    def test_insert_count_matches_dataset(self):
        from repro.core.construct import insertions_for

        contigs = _contigs()
        res = CudaLocalAssemblyKernel(A100).run(contigs, 21)
        expected = sum(insertions_for(c.reads, 21) for c in contigs)
        # without hints every read serves both ends -> inserted twice
        assert res.profile.inserts == 2 * expected

    def test_predication_ordering(self):
        """Active-lane fraction: SYCL-16 > CUDA-32 > HIP-64 (same workload)."""
        contigs = _contigs(seed=5)
        fracs = {}
        for kern_cls, dev in KERNELS:
            res = kern_cls(dev).run(contigs, 21)
            fracs[kern_cls.__name__] = res.profile.active_lane_fraction
        assert fracs["SyclLocalAssemblyKernel"] > fracs["CudaLocalAssemblyKernel"]
        assert fracs["CudaLocalAssemblyKernel"] > fracs["HipLocalAssemblyKernel"]

    def test_hip_needs_more_sync_ops_than_sycl(self):
        contigs = _contigs(seed=6)
        hip = HipLocalAssemblyKernel(MI250X).run(contigs, 21).profile
        sycl = SyclLocalAssemblyKernel(MAX1550).run(contigs, 21).profile
        # HIP: 2 __all per iteration; SYCL: 1 barrier. Normalize per iteration.
        hip_iters = hip.insert_probe_iterations + hip.lookups
        sycl_iters = sycl.insert_probe_iterations + sycl.lookups
        assert hip.sync_ops / hip_iters > 0
        assert sycl.sync_ops / sycl_iters > 0

    def test_memory_traffic_positive_and_bounded(self):
        contigs = _contigs(seed=7)
        res = CudaLocalAssemblyKernel(A100).run(contigs, 21)
        p = res.profile
        assert p.hbm_bytes > 0
        # can't move more HBM bytes than total accessed bytes
        assert p.hbm_bytes <= p.l1_hit_bytes + p.l2_hit_bytes + p.hbm_bytes

    def test_probe_iterations_at_least_one_per_insert(self):
        contigs = _contigs(seed=8)
        p = CudaLocalAssemblyKernel(A100).run(contigs, 21).profile
        assert p.insert_probe_iterations >= p.inserts

    def test_cuda_fewer_probe_iterations_than_hip(self):
        """match_any merges same-key CAS losers in-iteration; HIP retries."""
        spec = ScenarioSpec(contig_length=150, flank_length=50, read_length=80,
                            depth=30, seed_window=10)  # deep: many collisions
        contigs = _contigs(n=3, seed=11, spec=spec)
        cuda = CudaLocalAssemblyKernel(A100).run(contigs, 21).profile
        hip = HipLocalAssemblyKernel(MI250X, warp_size=32).run(contigs, 21).profile
        assert cuda.inserts == hip.inserts
        assert cuda.insert_probe_iterations <= hip.insert_probe_iterations


class TestConfiguration:
    def test_cuda_rejects_other_warp_sizes(self):
        with pytest.raises(KernelError, match="32"):
            CudaLocalAssemblyKernel(A100, warp_size=64)

    def test_sycl_rejects_unsupported_subgroup(self):
        with pytest.raises(KernelError):
            SyclLocalAssemblyKernel(MAX1550, sub_group_size=12)

    def test_sycl_subgroup_property(self):
        assert SyclLocalAssemblyKernel(MAX1550).sub_group_size == 16
        assert SyclLocalAssemblyKernel(MAX1550, sub_group_size=32).sub_group_size == 32

    def test_kernel_for_device(self):
        assert isinstance(kernel_for_device(A100), CudaLocalAssemblyKernel)
        assert isinstance(kernel_for_device(MI250X), HipLocalAssemblyKernel)
        assert isinstance(kernel_for_device(MAX1550), SyclLocalAssemblyKernel)

    def test_bad_table_sizing(self):
        with pytest.raises(KernelError):
            CudaLocalAssemblyKernel(A100, table_sizing="wild_guess")

    def test_bad_parallel_scale(self):
        with pytest.raises(KernelError):
            CudaLocalAssemblyKernel(A100).run(_contigs(n=1), 21, parallel_scale=0)

    def test_exact_sizing_smaller_tables(self):
        contigs = _contigs(seed=12)
        exact = CudaLocalAssemblyKernel(A100, table_sizing="exact")
        upper = CudaLocalAssemblyKernel(A100, table_sizing="upper_bound")
        pe = exact.run(contigs, 21).profile
        pu = upper.run(contigs, 21).profile
        # same functional work, different table footprints
        assert pe.inserts == pu.inserts
