"""Tests for the vectorized per-warp hash tables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HashTableFullError, KernelError
from repro.kernels.vectortable import SLOT_BYTES, WarpHashTables


def _tables(caps=(8, 16), k=4):
    return WarpHashTables(np.array(caps, dtype=np.int64), k)


class TestLayout:
    def test_offsets(self):
        t = _tables((8, 16, 4))
        np.testing.assert_array_equal(t.offsets, [0, 8, 24, 28])
        assert t.total_slots == 28
        assert t.n_warps == 3

    def test_total_bytes(self):
        assert _tables((10,)).total_bytes == 10 * SLOT_BYTES

    def test_rejects_empty(self):
        with pytest.raises(KernelError):
            WarpHashTables(np.array([], dtype=np.int64), 4)

    def test_rejects_zero_capacity(self):
        with pytest.raises(KernelError):
            _tables((8, 0))

    def test_slot_of_wraps_modulo(self):
        t = _tables((8, 16))
        slots = t.slot_of(np.array([0, 1]), np.array([9, 17]), np.array([0, 0]))
        np.testing.assert_array_equal(slots, [1, 8 + 1])

    def test_slot_of_full_probe_raises(self):
        t = _tables((8,))
        with pytest.raises(HashTableFullError):
            t.slot_of(np.array([0]), np.array([0]), np.array([8]))


class TestOperations:
    def test_claim_and_inspect(self):
        t = _tables((8,))
        winners = t.claim(np.array([3, 3, 5]), np.array([11, 12, 13], dtype=np.uint64))
        np.testing.assert_array_equal(winners, [True, False, True])
        occ, fp = t.inspect(np.array([3, 5, 0]))
        np.testing.assert_array_equal(occ, [True, True, False])
        assert fp[0] == 11 and fp[1] == 13

    def test_vote_accumulates(self):
        t = _tables((8,))
        t.claim(np.array([2]), np.array([9], dtype=np.uint64))
        t.vote(np.array([2, 2, 2]), np.array([0, 0, 3], dtype=np.uint8),
               np.array([True, False, True]))
        hi, lo = t.votes_at(np.array([2]))
        assert hi[0, 0] == 1 and lo[0, 0] == 1 and hi[0, 3] == 1
        assert t.count[2] == 3

    def test_occupancy(self):
        t = _tables((4,))
        assert t.occupancy() == 0.0
        t.claim(np.array([0, 1]), np.array([1, 2], dtype=np.uint64))
        assert t.occupancy() == pytest.approx(0.5)

    def test_keys_per_warp(self):
        t = _tables((4, 4))
        t.claim(np.array([0, 1, 5]), np.array([1, 2, 3], dtype=np.uint64))
        np.testing.assert_array_equal(t.keys_per_warp(), [2, 1])

    @settings(max_examples=20)
    @given(st.lists(st.integers(0, 7), min_size=1, max_size=30))
    def test_claims_are_exclusive(self, slots):
        """Property: a slot is claimed exactly once, first claimer wins."""
        t = _tables((8,))
        arr = np.array(slots)
        fps = np.arange(1, len(slots) + 1, dtype=np.uint64)
        winners = t.claim(arr, fps)
        for s in set(slots):
            first = slots.index(s)
            assert winners[first]
            assert t.fp[s] == fps[first]
