"""Tests for the lane-parallel walk mode (independent thread scheduling)."""

import numpy as np

from repro.core.extension import PRODUCTION_POLICY
from repro.genomics.simulate import PERFECT_READS, ScenarioSpec, simulate_batch
from repro.kernels import CudaLocalAssemblyKernel, HipLocalAssemblyKernel
from repro.perfmodel.timing import predict_time
from repro.simt.device import A100, MI250X

SPEC = ScenarioSpec(contig_length=200, flank_length=60, read_length=90,
                    depth=8, seed_window=50)


def _contigs(n=6, seed=21):
    rng = np.random.default_rng(seed)
    return [sc.contig for sc in simulate_batch(n, SPEC, rng, PERFECT_READS)]


class TestLaneParallelWalks:
    def test_functional_output_identical(self):
        contigs = _contigs()
        base = CudaLocalAssemblyKernel(A100, policy=PRODUCTION_POLICY)
        its = CudaLocalAssemblyKernel(A100, policy=PRODUCTION_POLICY,
                                      lane_parallel_walks=True)
        rb = base.run(contigs, 21)
        ri = its.run(contigs, 21)
        assert rb.right == ri.right
        assert rb.left == ri.left

    def test_walk_issue_width(self):
        contigs = _contigs()
        base = HipLocalAssemblyKernel(MI250X, policy=PRODUCTION_POLICY)
        its = HipLocalAssemblyKernel(MI250X, policy=PRODUCTION_POLICY,
                                     lane_parallel_walks=True)
        pb = base.run(contigs, 21).profile
        pi = its.run(contigs, 21).profile
        assert pb.walk_issue_width == 64
        assert pi.walk_issue_width == 1

    def test_walk_intops_unchanged(self):
        """ITS changes how walks are *scheduled*, not how much work they do."""
        contigs = _contigs()
        pb = CudaLocalAssemblyKernel(A100, policy=PRODUCTION_POLICY).run(
            contigs, 21).profile
        pi = CudaLocalAssemblyKernel(A100, policy=PRODUCTION_POLICY,
                                     lane_parallel_walks=True).run(
            contigs, 21).profile
        assert pb.walk_intops == pi.walk_intops
        assert pb.inserts == pi.inserts

    def test_predicted_time_improves(self):
        contigs = _contigs()
        pb = HipLocalAssemblyKernel(MI250X, policy=PRODUCTION_POLICY).run(
            contigs, 21).profile
        pi = HipLocalAssemblyKernel(MI250X, policy=PRODUCTION_POLICY,
                                    lane_parallel_walks=True).run(
            contigs, 21).profile
        tb = predict_time(pb, MI250X)
        ti = predict_time(pi, MI250X)
        assert ti.walk_issue < tb.walk_issue
        assert ti.total <= tb.total

    def test_active_lane_fraction_improves(self):
        contigs = _contigs()
        pb = HipLocalAssemblyKernel(MI250X, policy=PRODUCTION_POLICY).run(
            contigs, 21).profile
        pi = HipLocalAssemblyKernel(MI250X, policy=PRODUCTION_POLICY,
                                    lane_parallel_walks=True).run(
            contigs, 21).profile
        assert pi.active_lane_fraction > pb.active_lane_fraction
