"""Backend registry + cross-backend functional parity.

Every execution path — the three SIMT vendor ports and the scalar CPU
reference — must produce *identical* extension bases and walk states on
the same dataset; they may differ only in profile counters (warp width,
instruction counts, memory traffic). The registry is the single place
callers select paths by name or by device.
"""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.genomics.simulate import PERFECT_READS, ScenarioSpec, simulate_batch
from repro.kernels import (
    CudaLocalAssemblyKernel,
    HipLocalAssemblyKernel,
    ScalarReferenceBackend,
    SyclLocalAssemblyKernel,
    available_backends,
    backend_for_device,
    create_backend,
    kernel_for_device,
)
from repro.kernels.engine import ExecutionBackend
from repro.simt.device import A100, MAX1550, MI250X

SPEC = ScenarioSpec(contig_length=200, flank_length=60, read_length=90,
                    depth=8, seed_window=50)

BACKENDS = ["cuda", "hip", "sycl", "scalar"]


def _contigs(n=5, seed=3, spec=SPEC):
    rng = np.random.default_rng(seed)
    return [sc.contig for sc in simulate_batch(n, spec, rng, PERFECT_READS)]


class TestRegistry:
    def test_all_four_paths_registered(self):
        assert set(BACKENDS) <= set(available_backends())

    def test_create_by_name(self):
        assert isinstance(create_backend("cuda"), CudaLocalAssemblyKernel)
        assert isinstance(create_backend("hip"), HipLocalAssemblyKernel)
        assert isinstance(create_backend("sycl"), SyclLocalAssemblyKernel)
        assert isinstance(create_backend("scalar"), ScalarReferenceBackend)

    def test_names_are_case_insensitive(self):
        assert isinstance(create_backend("CUDA"), CudaLocalAssemblyKernel)

    def test_unknown_name_raises(self):
        with pytest.raises(KernelError, match="unknown backend"):
            create_backend("opencl")

    def test_backend_for_device_matches_programming_model(self):
        assert isinstance(backend_for_device(A100), CudaLocalAssemblyKernel)
        assert isinstance(backend_for_device(MI250X), HipLocalAssemblyKernel)
        assert isinstance(backend_for_device(MAX1550), SyclLocalAssemblyKernel)

    def test_kernel_for_device_still_works(self):
        kern = kernel_for_device(A100)
        assert isinstance(kern, CudaLocalAssemblyKernel)
        assert kern.device is A100

    def test_default_devices_are_the_paper_platforms(self):
        assert create_backend("cuda").device is A100
        assert create_backend("hip").device is MI250X
        assert create_backend("sycl").device is MAX1550

    def test_explicit_device_overrides_default(self):
        from repro.simt.device import DeviceSpec

        custom = MI250X.with_(name="MI250X-x2")
        kern = create_backend("hip", device=custom)
        assert isinstance(kern.device, DeviceSpec)
        assert kern.device.name == "MI250X-x2"

    def test_every_backend_satisfies_the_protocol(self):
        for name in BACKENDS:
            assert isinstance(create_backend(name), ExecutionBackend)


class TestBackendParity:
    """Identical functional output; only the profiles differ."""

    @pytest.mark.parametrize("name", BACKENDS)
    def test_run_matches_cuda(self, name):
        contigs = _contigs()
        want = create_backend("cuda").run(contigs, 21)
        got = create_backend(name).run(contigs, 21)
        assert tuple(got.right) == tuple(want.right)
        assert tuple(got.left) == tuple(want.left)

    @pytest.mark.parametrize("name", BACKENDS)
    def test_run_schedule_matches_cuda(self, name):
        contigs = _contigs(n=4, seed=11)
        want = create_backend("cuda").run_schedule(contigs, (21, 33))
        got = create_backend(name).run_schedule(contigs, (21, 33))
        assert got.k == want.k
        assert tuple(got.right) == tuple(want.right)
        assert tuple(got.left) == tuple(want.left)

    def test_profiles_differ_where_the_ports_differ(self):
        contigs = _contigs(seed=5)
        profs = {n: create_backend(n).run(contigs, 21).profile
                 for n in BACKENDS}
        # same work items everywhere...
        assert (profs["cuda"].inserts == profs["hip"].inserts
                == profs["sycl"].inserts == profs["scalar"].inserts)
        assert (profs["cuda"].extension_bases == profs["scalar"].extension_bases)
        # ...but port-specific widths and costs
        assert profs["cuda"].warp_size == 32
        assert profs["hip"].warp_size == 64
        assert profs["sycl"].warp_size == 16
        assert profs["scalar"].warp_size == 1
        # the three protocols charge different per-iteration costs
        assert len({profs[n].intops for n in ("cuda", "hip", "sycl")}) == 3
        assert all(profs[n].sync_ops > 0 for n in ("cuda", "hip", "sycl"))
        assert profs["scalar"].sync_ops == 0
        # the scalar path has no SIMT machinery at all
        assert profs["scalar"].warp_instructions == 0
        assert profs["scalar"].hbm_bytes == 0

    def test_scalar_backend_is_deviceless_by_default(self):
        res = create_backend("scalar").run(_contigs(n=2, seed=8), 21)
        assert res.device is None
