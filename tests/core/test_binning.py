"""Tests for contig binning (Figure 3 pre-processing)."""

import numpy as np
import pytest

from repro.core.binning import Bin, bin_contigs, binning_imbalance
from repro.core.construct import insertions_for
from repro.genomics.contig import Contig
from repro.genomics.reads import Read, ReadSet


def _contig(name, n_reads, read_len=60):
    c = Contig.from_string(name, "ACGT" * 30)
    c.reads = ReadSet(
        [Read.from_strings(f"{name}/r{i}", "ACGT" * (read_len // 4)) for i in range(n_reads)]
    )
    return c


class TestBinning:
    def test_every_contig_in_exactly_one_bin(self):
        contigs = [_contig(f"c{i}", n) for i, n in enumerate([1, 2, 50, 51, 5, 100])]
        bins = bin_contigs(contigs, k=21)
        seen = sorted(i for b in bins for i in b.contig_indices)
        assert seen == list(range(len(contigs)))

    def test_similar_depth_grouped(self):
        contigs = [_contig(f"c{i}", n) for i, n in enumerate([4, 5, 4, 100, 110])]
        bins = bin_contigs(contigs, k=21, depth_ratio=2.0)
        assert len(bins) == 2
        depths = [{contigs[i].depth for i in b.contig_indices} for b in bins]
        assert depths[0] == {4, 5}
        assert depths[1] == {100, 110}

    def test_depth_ratio_respected(self):
        contigs = [_contig(f"c{i}", n) for i, n in enumerate([1, 2, 4, 8, 16, 32])]
        for b in bin_contigs(contigs, k=21, depth_ratio=2.0):
            assert b.max_depth <= max(1, b.min_depth) * 2.0

    def test_memory_cap_splits_bins(self):
        contigs = [_contig(f"c{i}", 10) for i in range(6)]
        per = insertions_for(contigs[0].reads, 21)
        bins = bin_contigs(contigs, k=21, max_batch_insertions=per * 2)
        assert all(b.total_insertions <= per * 2 for b in bins)
        assert len(bins) == 3

    def test_table_slots_align_with_indices(self):
        contigs = [_contig("a", 3), _contig("b", 30)]
        bins = bin_contigs(contigs, k=21)
        for b in bins:
            assert len(b.table_slots) == len(b.contig_indices)
            for idx, slots in zip(b.contig_indices, b.table_slots):
                assert slots >= insertions_for(contigs[idx].reads, 21)

    def test_empty_input(self):
        assert bin_contigs([], k=21) == []

    def test_zero_read_contig_handled(self):
        bins = bin_contigs([_contig("empty", 0)], k=21)
        assert len(bins) == 1 and bins[0].table_slots[0] >= 16

    def test_bad_depth_ratio(self):
        with pytest.raises(ValueError):
            bin_contigs([_contig("a", 1)], k=21, depth_ratio=0.5)

    def test_bins_sorted_by_depth(self):
        rng = np.random.default_rng(0)
        contigs = [_contig(f"c{i}", int(n)) for i, n in
                   enumerate(rng.integers(1, 200, size=30))]
        bins = bin_contigs(contigs, k=21)
        maxes = [b.max_depth for b in bins]
        mins = [b.min_depth for b in bins]
        assert all(mins[i] >= maxes[i - 1] for i in range(1, len(bins)))


class TestImbalance:
    def test_binning_reduces_imbalance(self):
        rng = np.random.default_rng(1)
        contigs = [_contig(f"c{i}", int(n)) for i, n in
                   enumerate(rng.integers(1, 300, size=40))]
        one_bin = [Bin(contig_indices=list(range(len(contigs))))]
        binned = bin_contigs(contigs, k=21, depth_ratio=1.5)
        assert binning_imbalance(contigs, binned, 21) < binning_imbalance(
            contigs, one_bin, 21
        )

    def test_perfectly_uniform_is_one(self):
        contigs = [_contig(f"c{i}", 7) for i in range(5)]
        bins = bin_contigs(contigs, k=21)
        assert binning_imbalance(contigs, bins, 21) == pytest.approx(1.0)
