"""Tests for the loc_ht open-addressing hash table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashtable import LocalHashTable
from repro.errors import HashTableFullError, KmerError
from repro.genomics.dna import encode
from repro.genomics.kmer import kmers_of


def _key(s):
    return encode(s)


class TestBasics:
    def test_insert_and_lookup(self):
        t = LocalHashTable(capacity=16, k=4)
        t.insert(_key("ACGT"), 2, 30)
        slot = t.lookup(_key("ACGT"))
        assert slot is not None
        assert slot.kmer == "ACGT"
        assert slot.votes.hi_q[2] == 1

    def test_lookup_missing(self):
        t = LocalHashTable(capacity=16, k=4)
        assert t.lookup(_key("ACGT")) is None

    def test_duplicate_keys_merge(self):
        t = LocalHashTable(capacity=16, k=4)
        t.insert(_key("ACGT"), 0, 30)
        t.insert(_key("ACGT"), 0, 10)
        t.insert(_key("ACGT"), 3, 30)
        assert len(t) == 1
        slot = t.lookup(_key("ACGT"))
        assert slot.votes.hi_q[0] == 1
        assert slot.votes.low_q[0] == 1
        assert slot.votes.hi_q[3] == 1
        assert slot.votes.count == 3

    def test_contains(self):
        t = LocalHashTable(capacity=16, k=4)
        t.insert(_key("ACGT"), 0, 30)
        assert _key("ACGT") in t
        assert _key("TTTT") not in t

    def test_contains_does_not_change_stats(self):
        t = LocalHashTable(capacity=16, k=4)
        t.insert(_key("ACGT"), 0, 30)
        before = (t.stats.lookups, t.stats.probes)
        _ = _key("ACGT") in t
        assert (t.stats.lookups, t.stats.probes) == before

    def test_wrong_key_length_rejected(self):
        t = LocalHashTable(capacity=16, k=4)
        with pytest.raises(KmerError):
            t.insert(_key("ACG"), 0, 30)
        with pytest.raises(KmerError):
            t.lookup(_key("ACGTA"))

    def test_bad_construction(self):
        with pytest.raises(KmerError):
            LocalHashTable(capacity=0, k=4)
        with pytest.raises(KmerError):
            LocalHashTable(capacity=8, k=0)


class TestCollisions:
    def test_full_table_raises(self):
        t = LocalHashTable(capacity=4, k=3)
        inserted = 0
        with pytest.raises(HashTableFullError):
            for m in kmers_of("ACGTACGTAAACCCGGGTTTACG", 3):
                t.insert(_key(m), 0, 30)
                inserted += 1
        assert inserted >= 4  # filled every slot before failing

    def test_linear_probing_preserves_all_keys(self):
        # tiny capacity forces probe chains; all distinct keys must survive
        t = LocalHashTable(capacity=11, k=3)
        keys = ["AAA", "CCC", "GGG", "TTT", "ACG", "CGT", "GTA", "TAC"]
        for s in keys:
            t.insert(_key(s), 1, 30)
        assert len(t) == 8
        for s in keys:
            assert t.lookup(_key(s)).kmer == s

    def test_collision_stats_tracked(self):
        t = LocalHashTable(capacity=4, k=3)
        for s in ["AAA", "CCC", "GGG", "TTT"]:
            t.insert(_key(s), 0, 30)
        # 4 keys into 4 slots must have probed at least 4 times total
        assert t.stats.inserts == 4
        assert t.stats.probes >= 4
        assert t.stats.mean_probe_length >= 1.0

    def test_load_factor(self):
        t = LocalHashTable(capacity=10, k=3)
        t.insert(_key("AAA"), 0, 30)
        t.insert(_key("CCC"), 0, 30)
        assert t.load_factor == pytest.approx(0.2)


class TestBulk:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.text(alphabet="ACGT", min_size=5, max_size=5),
                    min_size=1, max_size=60))
    def test_semantics_match_dict(self, keys):
        """Property: the table behaves exactly like a dict of vote counts."""
        t = LocalHashTable(capacity=256, k=5)
        expected: dict[str, int] = {}
        for s in keys:
            t.insert(_key(s), 0, 30)
            expected[s] = expected.get(s, 0) + 1
        assert len(t) == len(expected)
        for s, n in expected.items():
            slot = t.lookup(_key(s))
            assert slot is not None and slot.votes.count == n
        assert sorted(t.keys()) == sorted(expected)

    def test_seed_changes_layout_not_content(self):
        keys = kmers_of("ACGTACGTAACCGGTT", 4)
        t0 = LocalHashTable(capacity=64, k=4, seed=0)
        t1 = LocalHashTable(capacity=64, k=4, seed=99)
        for m in keys:
            t0.insert(_key(m), 0, 30)
            t1.insert(_key(m), 0, 30)
        assert sorted(t0.keys()) == sorted(t1.keys())
