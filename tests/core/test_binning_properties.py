"""Property-based tests for contig binning invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binning import bin_contigs
from repro.core.construct import insertions_for
from repro.genomics.contig import Contig
from repro.genomics.reads import Read, ReadSet


@st.composite
def contig_set(draw):
    n = draw(st.integers(1, 25))
    contigs = []
    for i in range(n):
        c = Contig.from_string(f"c{i}", "ACGT" * 20)
        depth = draw(st.integers(0, 40))
        c.reads = ReadSet([Read.from_strings(f"c{i}/r{j}", "ACGT" * 15)
                           for j in range(depth)])
        contigs.append(c)
    return contigs


@settings(max_examples=25, deadline=None)
@given(contig_set(), st.floats(1.0, 8.0))
def test_partition_property(contigs, ratio):
    """Every contig lands in exactly one bin, regardless of parameters."""
    bins = bin_contigs(contigs, 21, depth_ratio=ratio)
    seen = sorted(i for b in bins for i in b.contig_indices)
    assert seen == list(range(len(contigs)))


@settings(max_examples=25, deadline=None)
@given(contig_set(), st.floats(1.0, 8.0))
def test_depth_ratio_invariant(contigs, ratio):
    for b in bin_contigs(contigs, 21, depth_ratio=ratio):
        assert b.max_depth <= max(1, b.min_depth) * ratio + 1e-9


@settings(max_examples=25, deadline=None)
@given(contig_set(), st.integers(100, 5000))
def test_memory_cap_invariant(contigs, cap):
    """No bin exceeds the insertion cap unless a single contig does."""
    for b in bin_contigs(contigs, 21, max_batch_insertions=cap):
        if len(b) > 1:
            assert b.total_insertions <= cap


@settings(max_examples=25, deadline=None)
@given(contig_set())
def test_total_insertions_conserved(contigs):
    bins = bin_contigs(contigs, 21)
    assert sum(b.total_insertions for b in bins) == sum(
        insertions_for(c.reads, 21) for c in contigs
    )


@settings(max_examples=15, deadline=None)
@given(contig_set())
def test_tighter_ratio_never_fewer_bins(contigs):
    loose = bin_contigs(contigs, 21, depth_ratio=8.0)
    tight = bin_contigs(contigs, 21, depth_ratio=1.5)
    assert len(tight) >= len(loose)
