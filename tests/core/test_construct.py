"""Tests for Algorithm 1 (hash-table construction) and table sizing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.construct import (
    build_table,
    build_table_for_contig,
    estimate_table_slots,
    insertions_for,
)
from repro.genomics.contig import Contig
from repro.genomics.dna import encode
from repro.genomics.reads import Read, ReadSet


def _reads(*seqs):
    return ReadSet([Read.from_strings(f"r{i}", s) for i, s in enumerate(seqs)])


class TestInsertionCount:
    def test_single_read(self):
        # L - k insertions (each inserted k-mer needs a following base)
        assert insertions_for(_reads("ACGTACGT"), 4) == 4

    def test_read_shorter_than_k(self):
        assert insertions_for(_reads("ACG"), 4) == 0

    def test_read_length_exactly_k(self):
        assert insertions_for(_reads("ACGT"), 4) == 0  # no extension base

    def test_table2_relation(self):
        """Table II consistency: reads of length L give ~L-k insertions each."""
        rs = _reads(*("ACGT" * 40 for _ in range(10)))  # 10 reads of 160
        assert insertions_for(rs, 21) == 10 * (160 - 21)

    @given(st.integers(1, 50), st.integers(1, 60))
    def test_formula(self, k, length):
        rs = _reads("A" * length)
        assert insertions_for(rs, k) == max(0, length - k)


class TestSizing:
    def test_estimate_monotone(self):
        assert estimate_table_slots(100) >= estimate_table_slots(10)

    def test_floor(self):
        assert estimate_table_slots(0) == 16

    def test_load_factor_headroom(self):
        n = 1000
        assert estimate_table_slots(n, load_factor=0.5) >= 2 * n

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            estimate_table_slots(-1)
        with pytest.raises(ValueError):
            estimate_table_slots(10, load_factor=0.0)
        with pytest.raises(ValueError):
            estimate_table_slots(10, load_factor=1.5)


class TestBuild:
    def test_votes_recorded_with_quality_split(self):
        r = Read.from_strings("r", "AACGT", quals=None)
        r.quals = np.array([40, 40, 40, 40, 5], dtype=np.uint8)
        table = build_table(ReadSet([r]), 2)
        # k-mer "AA" -> next base C (qual 40, hi)
        slot = table.lookup(encode("AA"))
        assert slot.votes.hi_q[1] == 1
        # k-mer "CG" -> next base T (qual 5, low)
        slot = table.lookup(encode("CG"))
        assert slot.votes.low_q[3] == 1

    def test_all_eligible_kmers_inserted(self):
        rs = _reads("ACGTACGTAC")
        table = build_table(rs, 4)
        assert table.stats.inserts == insertions_for(rs, 4)
        for m in ("ACGT", "CGTA", "GTAC", "TACG"):
            assert table.lookup(encode(m)) is not None

    def test_last_kmer_not_inserted(self):
        table = build_table(_reads("ACGTA"), 4)
        # GTAC... the final 4-mer "CGTA" has a next base? "ACGTA": kmers with
        # next base: ACGT->A only. CGTA has no following base.
        assert table.lookup(encode("ACGT")) is not None
        assert table.lookup(encode("CGTA")) is None

    def test_capacity_estimated_when_omitted(self):
        rs = _reads(*("ACGTACGTACGTACGT" for _ in range(3)))
        table = build_table(rs, 4)
        assert table.capacity >= insertions_for(rs, 4)

    def test_explicit_capacity_respected(self):
        table = build_table(_reads("ACGTAC"), 4, capacity=99)
        assert table.capacity == 99

    def test_build_for_contig(self):
        c = Contig.from_string("c", "ACGTACGT")
        c.reads = _reads("ACGTACGTT")
        t = build_table_for_contig(c, 4)
        assert len(t) > 0

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.text(alphabet="ACGT", min_size=8, max_size=40),
                    min_size=1, max_size=8))
    def test_matches_reference_dict(self, seqs):
        """Differential: optimized table == naive dict table."""
        from repro.core.reference import reference_table

        rs = _reads(*seqs)
        k = 5
        table = build_table(rs, k)
        ref = reference_table(rs, k)
        assert sorted(table.keys()) == sorted(ref)
        for kmer_s, votes in ref.items():
            slot = table.lookup(encode(kmer_s))
            np.testing.assert_array_equal(slot.votes.hi_q, votes.hi_q)
            np.testing.assert_array_equal(slot.votes.low_q, votes.low_q)
