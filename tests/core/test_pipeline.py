"""Tests for the end-to-end local-assembly pipeline."""

import numpy as np
import pytest

from repro.core.pipeline import DEFAULT_K_SCHEDULE, LocalAssembler
from repro.errors import KmerError
from repro.genomics.contig import End
from repro.genomics.simulate import (
    PERFECT_READS,
    ErrorProfile,
    ScenarioSpec,
    simulate_batch,
    simulate_contig_scenario,
)

SPEC = ScenarioSpec(contig_length=260, flank_length=80, read_length=100,
                    depth=10, seed_window=60)


def _assembler(ks=(21, 33)):
    return LocalAssembler(k_schedule=ks)


class TestConstruction:
    def test_default_schedule(self):
        assert LocalAssembler().k_schedule == DEFAULT_K_SCHEDULE

    def test_rejects_empty_schedule(self):
        with pytest.raises(KmerError):
            LocalAssembler(k_schedule=())

    def test_rejects_non_increasing_schedule(self):
        with pytest.raises(KmerError):
            LocalAssembler(k_schedule=(33, 21))
        with pytest.raises(KmerError):
            LocalAssembler(k_schedule=(21, 21))


class TestExtension:
    def test_right_extension_matches_truth(self):
        rng = np.random.default_rng(42)
        sc = simulate_contig_scenario(SPEC, rng, PERFECT_READS)
        _assembler().assemble_contig(sc.contig)
        ext = sc.contig.right_extension
        assert ext is not None and len(ext.bases) > 10
        assert sc.true_right_flank.startswith(ext.bases)

    def test_left_extension_matches_truth(self):
        rng = np.random.default_rng(43)
        sc = simulate_contig_scenario(SPEC, rng, PERFECT_READS)
        _assembler().assemble_contig(sc.contig)
        ext = sc.contig.left_extension
        assert ext is not None and len(ext.bases) > 10
        assert sc.true_left_flank.endswith(ext.bases)

    def test_extended_sequence_is_region_substring(self):
        rng = np.random.default_rng(44)
        sc = simulate_contig_scenario(SPEC, rng, PERFECT_READS)
        _assembler().assemble_contig(sc.contig)
        from repro.genomics.dna import decode

        assert sc.contig.extended_sequence() in decode(sc.region)

    def test_extensions_with_sequencing_errors(self):
        """Majority voting should still recover true flank prefixes."""
        rng = np.random.default_rng(45)
        profile = ErrorProfile(error_rate=0.003)
        spec = ScenarioSpec(contig_length=260, flank_length=80, read_length=100,
                            depth=16, seed_window=60)
        ok = 0
        for _ in range(5):
            sc = simulate_contig_scenario(spec, rng, profile)
            _assembler().assemble_contig(sc.contig)
            ext = sc.contig.right_extension
            if ext.bases and sc.true_right_flank.startswith(ext.bases):
                ok += 1
        assert ok >= 3

    def test_batch_assemble(self):
        rng = np.random.default_rng(46)
        scs = simulate_batch(4, SPEC, rng, PERFECT_READS)
        results = _assembler().assemble([sc.contig for sc in scs])
        assert len(results) == 4
        assert all(r.contig.right_extension is not None for r in results)

    def test_walks_recorded_per_k(self):
        rng = np.random.default_rng(47)
        sc = simulate_contig_scenario(SPEC, rng, PERFECT_READS)
        res = _assembler((21, 33)).assemble_contig(sc.contig)
        assert 1 <= len(res.right_walks) <= 2
        assert res.extension_length == sc.contig.total_extension_length()

    def test_contig_shorter_than_k(self):
        rng = np.random.default_rng(48)
        spec = ScenarioSpec(contig_length=30, flank_length=40, read_length=50,
                            depth=6, seed_window=20)
        sc = simulate_contig_scenario(spec, rng, PERFECT_READS)
        res = LocalAssembler(k_schedule=(21, 33, 55)).assemble_contig(sc.contig)
        # k=33,55 exceed the contig; only k=21 should have been tried
        assert all(w.k == 21 for w in res.right_walks)

    def test_fork_triggers_next_k(self):
        """Figure 1: a fork at small k is resolved at larger k.

        Two source sequences share a 25-base core, so k=21 walks hit a
        fork inside the shared region but k=33 distinguishes them.
        """
        rng = np.random.default_rng(49)
        from repro.genomics.dna import decode, random_sequence
        from repro.genomics.reads import Read, ReadSet
        from repro.genomics.contig import Contig

        core = decode(random_sequence(25, rng))
        a_pre = decode(random_sequence(60, rng))
        b_pre = decode(random_sequence(60, rng))
        a_post = decode(random_sequence(60, rng))
        b_post = decode(random_sequence(60, rng))
        seq_a = a_pre + core + a_post
        seq_b = b_pre + core + b_post
        contig = Contig.from_string("c", a_pre + core)
        reads = ReadSet()
        for i in range(4):
            reads.append(Read.from_strings(f"a{i}", seq_a))
            reads.append(Read.from_strings(f"b{i}", seq_b))
        contig.reads = reads
        res = LocalAssembler(k_schedule=(21, 33)).assemble_contig(contig)
        states = [w.state.value for w in res.right_walks]
        assert states[0] == "fork"
        assert contig.right_extension.kmer_size == 33
        assert contig.right_extension.bases  # resolved at k=33
        assert a_post.startswith(contig.right_extension.bases)


class TestKeepLongestAccepted:
    """Pin the best-walk selection rule of ``_walk_one_end``.

    An accepted walk (anything but a fork) must win over a *longer* fork
    kept from an earlier k — a fork's bases stop at an unresolved branch,
    so preferring them by length alone would report unresolved guesses
    over a clean termination. Within the same acceptance class the
    longest extension wins.
    """

    def _scenario(self):
        rng = np.random.default_rng(7)
        return simulate_contig_scenario(SPEC, rng, PERFECT_READS)

    def _scripted(self, monkeypatch, results):
        it = iter(results)
        monkeypatch.setattr("repro.core.pipeline.mer_walk",
                            lambda *a, **kw: next(it))

    def test_accepted_walk_beats_longer_fork(self, monkeypatch):
        from repro.core.merwalk import WalkResult
        from repro.core.extension import WalkState

        sc = self._scenario()
        self._scripted(monkeypatch, [
            WalkResult(bases="ACGTACGTACGT", state=WalkState.FORK, steps=13, k=21),
            WalkResult(bases="ACGT", state=WalkState.END, steps=5, k=33),
        ])
        asm = LocalAssembler(k_schedule=(21, 33))
        ext, walks = asm._walk_one_end(
            sc.contig, sc.contig.reads_for_end(End.RIGHT), End.RIGHT)
        assert len(walks) == 2
        assert ext.walk_state == WalkState.END.value
        assert ext.bases == "ACGT"
        assert ext.kmer_size == 33

    def test_longest_fork_kept_when_nothing_accepted(self, monkeypatch):
        from repro.core.merwalk import WalkResult
        from repro.core.extension import WalkState

        sc = self._scenario()
        self._scripted(monkeypatch, [
            WalkResult(bases="ACGTACGTACGT", state=WalkState.FORK, steps=13, k=21),
            WalkResult(bases="ACG", state=WalkState.FORK, steps=4, k=33),
        ])
        asm = LocalAssembler(k_schedule=(21, 33))
        ext, walks = asm._walk_one_end(
            sc.contig, sc.contig.reads_for_end(End.RIGHT), End.RIGHT)
        assert len(walks) == 2
        assert ext.walk_state == WalkState.FORK.value
        assert ext.bases == "ACGTACGTACGT"
        assert ext.kmer_size == 21

    def test_accepted_non_missing_stops_the_schedule(self, monkeypatch):
        from repro.core.merwalk import WalkResult
        from repro.core.extension import WalkState

        sc = self._scenario()
        self._scripted(monkeypatch, [
            WalkResult(bases="ACGTA", state=WalkState.END, steps=6, k=21),
        ])
        asm = LocalAssembler(k_schedule=(21, 33))
        ext, walks = asm._walk_one_end(
            sc.contig, sc.contig.reads_for_end(End.RIGHT), End.RIGHT)
        assert len(walks) == 1
        assert ext.bases == "ACGTA"
        assert ext.kmer_size == 21

    def test_missing_retries_and_later_acceptance_wins(self, monkeypatch):
        from repro.core.merwalk import WalkResult
        from repro.core.extension import WalkState

        sc = self._scenario()
        self._scripted(monkeypatch, [
            WalkResult(bases="", state=WalkState.MISSING, steps=0, k=21),
            WalkResult(bases="AC", state=WalkState.END, steps=3, k=33),
        ])
        asm = LocalAssembler(k_schedule=(21, 33))
        ext, walks = asm._walk_one_end(
            sc.contig, sc.contig.reads_for_end(End.RIGHT), End.RIGHT)
        assert len(walks) == 2
        assert ext.walk_state == WalkState.END.value
        assert ext.bases == "AC"
