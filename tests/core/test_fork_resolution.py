"""Figure 1 of the paper, as executable tests.

The figure shows the sequence ``agccctcccg``: with k=4 the de Bruijn
graph has a fork at node ``ccc`` (edges ``ccct`` and ``cccg``), and with
k=6 the fork disappears. We reproduce both properties with the real hash
table and walk machinery.
"""


from repro.core.construct import build_table
from repro.core.extension import WalkPolicy, WalkState
from repro.core.merwalk import mer_walk
from repro.genomics.dna import encode
from repro.genomics.reads import Read, ReadSet

SEQ = "AGCCCTCCCG"
POLICY = WalkPolicy(min_depth=1, hi_q_min_depth=1)


def _table(k, copies=2):
    rs = ReadSet([Read.from_strings(f"r{j}", SEQ) for j in range(copies)])
    return build_table(rs, k)


def test_k4_graph_has_fork_at_ccc():
    table = _table(4)
    table.lookup(encode("TCCC"))
    # TCCC's next base is G... the fork in figure 1 is at 3-mer node ccc:
    # k-mers CCCT and CCCG share prefix CCC. In the k=4 hash table the key
    # CCCT exists (ext C) and the walk from AGCC forks at CCC? With k=4 keys
    # the ambiguity shows as key "CCC?"; check both CCCT and CCCG present:
    assert table.lookup(encode("CCCT")) is not None
    assert table.lookup(encode("CCCG")) is None  # CCCG has no following base
    # the fork manifests at key GCCC? No - at walk step where current = CCC?
    # For k=4 walk starting AGCC: AGCC->C, GCCC->T, CCCT->C, CCTC->C, CTCC->C,
    # TCCC->G, i.e. the k=4 *hash table* walk actually resolves the repeat
    # because k-mers span 4 bases. The genuine fork appears for k=3:
    t3 = _table(3)
    res = mer_walk(t3, encode(SEQ[:3]), policy=POLICY)
    assert res.state in (WalkState.FORK, WalkState.LOOP)


def test_larger_k_resolves_and_recovers_sequence():
    # k=6 (the figure's resolving size): walk reproduces the input sequence.
    t6 = _table(6)
    res = mer_walk(t6, encode(SEQ[:6]), policy=POLICY)
    assert SEQ[:6] + res.bases == SEQ


def test_walk_edges_are_kmers():
    """Figure 1c: hash table keys are k-mer prefixes with extension values."""
    table = _table(4)
    keys = set(table.keys())
    expected = {SEQ[i : i + 4] for i in range(len(SEQ) - 4)}
    assert keys == expected


def test_walking_reconstructs_original_sequence_for_unique_kmers():
    seq = "GATTACAGGGTTTCCCAAA"
    rs = ReadSet([Read.from_strings("a", seq), Read.from_strings("b", seq)])
    table = build_table(rs, 6)
    res = mer_walk(table, encode(seq[:6]), policy=POLICY)
    assert seq[:6] + res.bases == seq
