"""Tests for the dict-based reference implementation and differential checks."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.extension import WalkPolicy, WalkState
from repro.core.pipeline import LocalAssembler
from repro.core.reference import reference_extend, reference_table, reference_walk
from repro.genomics.contig import End
from repro.genomics.reads import Read, ReadSet
from repro.genomics.simulate import PERFECT_READS, ScenarioSpec, simulate_contig_scenario

RELAXED = WalkPolicy(min_depth=1, hi_q_min_depth=1)


class TestReferenceTable:
    def test_counts(self):
        rs = ReadSet([Read.from_strings("r", "AAAA")])
        t = reference_table(rs, 2)
        assert t["AA"].count == 2  # positions 0,1 have following bases

    def test_votes_quality_split(self):
        r = Read.from_strings("r", "ACG")
        r.quals = np.array([40, 40, 5], dtype=np.uint8)
        t = reference_table(ReadSet([r]), 2)
        assert t["AC"].low_q[2] == 1  # next base G with qual 5


class TestReferenceWalk:
    def test_linear(self):
        rs = ReadSet([Read.from_strings("r", "GATTACA")])
        t = reference_table(rs, 3)
        bases, state, steps = reference_walk(t, "GAT", policy=RELAXED)
        assert bases == "TACA"
        assert state is WalkState.END

    def test_missing(self):
        bases, state, _ = reference_walk({}, "AAA", policy=RELAXED)
        assert state is WalkState.MISSING and bases == ""

    def test_max_len(self):
        rs = ReadSet([Read.from_strings("r", "GATTCCGGA")])
        t = reference_table(rs, 3)
        bases, state, _ = reference_walk(t, "GAT", max_walk_len=2, policy=RELAXED)
        assert state is WalkState.MAX_LEN and len(bases) == 2


class TestDifferentialPipeline:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_pipeline_matches_reference_single_k(self, seed):
        """The optimized pipeline at a single k equals reference_extend."""
        rng = np.random.default_rng(seed)
        spec = ScenarioSpec(contig_length=150, flank_length=50, read_length=70,
                            depth=6, seed_window=40)
        sc = simulate_contig_scenario(spec, rng, PERFECT_READS)
        k = 21
        ref = reference_extend(sc.contig, k)
        asm = LocalAssembler(k_schedule=(k,))
        asm.assemble_contig(sc.contig)
        got_right = sc.contig.right_extension
        got_left = sc.contig.left_extension
        ref_right_bases, ref_right_state = ref[End.RIGHT]
        ref_left_bases, ref_left_state = ref[End.LEFT]
        assert got_right.bases == ref_right_bases
        assert got_right.walk_state == ref_right_state.value
        assert got_left.bases == ref_left_bases
        assert got_left.walk_state == ref_left_state.value
