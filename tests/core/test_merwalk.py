"""Tests for Algorithm 2 (mer-walks)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.construct import build_table
from repro.core.extension import WalkPolicy, WalkState
from repro.core.merwalk import WalkResult, mer_walk
from repro.errors import KmerError
from repro.genomics.dna import encode
from repro.genomics.reads import Read, ReadSet

RELAXED = WalkPolicy(min_depth=1, hi_q_min_depth=1)


def _table(seqs, k, copies=2):
    """Build a table where each sequence appears `copies` times (clear votes)."""
    rs = ReadSet(
        [Read.from_strings(f"r{i}_{j}", s) for i, s in enumerate(seqs) for j in range(copies)]
    )
    return build_table(rs, k)


class TestWalks:
    def test_simple_linear_walk(self):
        # Reads spell GATTACACC; contig ends with GATT -> walk ACACC... up to end
        t = _table(["GATTACACC"], 4)
        res = mer_walk(t, encode("GATT"))
        assert res.bases == "ACACC"
        assert res.state is WalkState.END  # ran off the read
        assert res.steps == len("ACACC") + 1

    def test_missing_seed(self):
        t = _table(["GATTACACC"], 4)
        res = mer_walk(t, encode("TTTT"))
        assert res.state is WalkState.MISSING
        assert res.bases == ""
        assert res.accepted  # missing is not a fork -> accepted

    def test_fork_detected(self):
        # After ACGT the evidence splits evenly: A-branch and C-branch.
        t = _table(["TACGTA", "TACGTC"], 4)
        res = mer_walk(t, encode("TACG"))
        # first step extends T (unanimous), second step forks A vs C
        assert res.state is WalkState.FORK
        assert res.bases == "T"
        assert not res.accepted

    def test_loop_detected(self):
        # Circular repeat: AAAA always extends with A -> immediate self-loop.
        t = _table(["AAAAAA"], 4)
        res = mer_walk(t, encode("AAAA"))
        assert res.state is WalkState.LOOP
        assert res.bases == ""

    def test_longer_loop_detected(self):
        # ACGACGACG...: k-mer cycle of period 3.
        t = _table(["ACGACGACGACG"], 3)
        res = mer_walk(t, encode("ACG"))
        assert res.state is WalkState.LOOP
        assert len(res.bases) < 4

    def test_max_walk_len(self):
        t = _table(["GATTACACCGGTT"], 4)
        res = mer_walk(t, encode("GATT"), max_walk_len=3)
        assert res.state is WalkState.MAX_LEN
        assert res.bases == "ACA"
        assert res.accepted

    def test_wrong_seed_length(self):
        t = _table(["GATTACA"], 4)
        with pytest.raises(KmerError):
            mer_walk(t, encode("GATTA"))

    def test_insufficient_depth_ends(self):
        # single copy -> best vote count 1 < min_depth 2 under default policy
        t = _table(["GATTACACC"], 4, copies=1)
        res = mer_walk(t, encode("GATT"))
        assert res.state is WalkState.END
        assert res.bases == ""

    def test_relaxed_policy_extends_single_copy(self):
        t = _table(["GATTACACC"], 4, copies=1)
        res = mer_walk(t, encode("GATT"), policy=RELAXED)
        assert res.bases == "ACACC"

    def test_errors_outvoted(self):
        # Four good reads vs one read with an error mid-way: walk follows majority.
        good = "ACGTTGCAAC"
        bad = "ACGTTACAAC"  # G->A at position 5
        rs = ReadSet([Read.from_strings(f"g{i}", good) for i in range(4)]
                     + [Read.from_strings("b", bad)])
        t = build_table(rs, 4)
        res = mer_walk(t, encode("ACGT"))
        assert res.bases == good[4:]

    def test_walkresult_len(self):
        assert len(WalkResult("ACG", WalkState.END, 4, 21)) == 3

    @settings(max_examples=25, deadline=None)
    @given(st.text(alphabet="ACGT", min_size=12, max_size=80), st.integers(4, 8))
    def test_walk_matches_reference(self, seq, k):
        """Differential: hash-table walk == dict-based reference walk."""
        from repro.core.reference import reference_table, reference_walk

        t = _table([seq], k)
        ref = reference_table(ReadSet([Read.from_strings("a", seq),
                                       Read.from_strings("b", seq)]), k)
        seed = seq[:k]
        got = mer_walk(t, encode(seed), policy=RELAXED)
        want_bases, want_state, want_steps = reference_walk(ref, seed, policy=RELAXED)
        assert got.bases == want_bases
        assert got.state == want_state
        assert got.steps == want_steps

    @settings(max_examples=25, deadline=None)
    @given(st.text(alphabet="ACGT", min_size=10, max_size=60))
    def test_walk_never_exceeds_cap(self, seq):
        t = _table([seq], 5)
        res = mer_walk(t, encode(seq[:5]), max_walk_len=7, policy=RELAXED)
        assert len(res.bases) <= 7
