"""Tests for multi-process local assembly."""

import numpy as np
import pytest

from repro.core.parallel import assemble_parallel, chunk_evenly, chunk_size_for
from repro.core.pipeline import LocalAssembler
from repro.errors import ReproError
from repro.genomics.simulate import PERFECT_READS, ScenarioSpec, simulate_batch

SPEC = ScenarioSpec(contig_length=180, flank_length=50, read_length=80,
                    depth=6, seed_window=40)


def _contigs(n=8, seed=13):
    rng = np.random.default_rng(seed)
    return [sc.contig for sc in simulate_batch(n, SPEC, rng, PERFECT_READS)]


class TestChunkHelpers:
    def test_never_exceeds_task_target(self):
        # the old floor division spilled the remainder into extra tasks
        # (e.g. 10 items / 1 worker -> 5 tasks instead of <= 4)
        for n in range(1, 200):
            for workers in (1, 2, 4, 7):
                chunks = chunk_evenly(list(range(n)), workers)
                assert len(chunks) <= workers * 4, (n, workers)
                assert sum(len(c) for c in chunks) == n
                assert [x for c in chunks for x in c] == list(range(n))

    def test_ceil_division(self):
        assert chunk_size_for(10, 1) == 3   # ceil(10/4), floor gave 2
        assert chunk_size_for(16, 1) == 4
        assert chunk_size_for(17, 1) == 5
        assert chunk_size_for(3, 4) == 1
        assert chunk_size_for(0, 4) == 1

    def test_small_inputs_not_degenerate(self):
        # 9 items, 2 workers: floor gave 1-item chunks (9 tasks);
        # ceil packs them into <= 8 tasks of 2
        chunks = chunk_evenly(list(range(9)), 2)
        assert len(chunks) <= 8
        assert max(len(c) for c in chunks) == 2

    def test_explicit_chunk_size_respected(self):
        chunks = chunk_evenly(list(range(5)), 2, chunk_size=2)
        assert [len(c) for c in chunks] == [2, 2, 1]

    def test_rejects_bad_workers(self):
        with pytest.raises(ReproError):
            chunk_size_for(10, 0)


class TestAssembleParallel:
    def test_matches_serial(self):
        serial = _contigs()
        parallel = _contigs()  # identical copy (same seed)
        asm = LocalAssembler(k_schedule=(21,))
        asm.assemble(serial)
        assemble_parallel(parallel, LocalAssembler(k_schedule=(21,)), workers=2)
        for a, b in zip(serial, parallel):
            assert a.right_extension.bases == b.right_extension.bases
            assert a.left_extension.bases == b.left_extension.bases
            assert a.right_extension.walk_state == b.right_extension.walk_state

    def test_serial_fallback_workers_one(self):
        contigs = _contigs(n=3)
        results = assemble_parallel(contigs, workers=1)
        assert len(results) == 3
        assert all(r.contig is contigs[i] for i, r in enumerate(results))
        assert all(c.right_extension is not None for c in contigs)

    def test_extensions_attached_to_original_objects(self):
        contigs = _contigs(n=4)
        assemble_parallel(contigs, LocalAssembler(k_schedule=(21,)), workers=2)
        assert all(c.right_extension is not None for c in contigs)
        assert all(c.left_extension is not None for c in contigs)

    def test_empty_input(self):
        assert assemble_parallel([], workers=2) == []

    def test_result_order_preserved(self):
        contigs = _contigs(n=6)
        results = assemble_parallel(contigs, LocalAssembler(k_schedule=(21,)),
                                    workers=2, chunk_size=2)
        assert [r.contig.name for r in results] == [c.name for c in contigs]

    def test_rejects_bad_workers(self):
        with pytest.raises(ReproError):
            assemble_parallel(_contigs(n=1), workers=0)

    def test_custom_chunk_size(self):
        contigs = _contigs(n=5)
        results = assemble_parallel(contigs, LocalAssembler(k_schedule=(21,)),
                                    workers=2, chunk_size=1)
        assert len(results) == 5
