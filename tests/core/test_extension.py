"""Tests for extension votes and the walk-resolution rule."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core.extension import (
    ExtensionVotes,
    WalkPolicy,
    WalkState,
    describe_votes,
    resolve_extension,
)


def _votes(hi=(0, 0, 0, 0), lo=(0, 0, 0, 0)):
    v = ExtensionVotes()
    v.hi_q = np.array(hi, dtype=np.int64)
    v.low_q = np.array(lo, dtype=np.int64)
    v.count = int(sum(hi) + sum(lo))
    return v


class TestVoting:
    def test_vote_high_quality(self):
        v = ExtensionVotes()
        v.vote(2, 30)
        assert v.hi_q[2] == 1 and v.low_q[2] == 0 and v.count == 1

    def test_vote_low_quality(self):
        v = ExtensionVotes()
        v.vote(1, 10)
        assert v.low_q[1] == 1 and v.hi_q[1] == 0

    def test_vote_threshold_boundary(self):
        v = ExtensionVotes()
        v.vote(0, 20)  # default threshold is >= 20
        assert v.hi_q[0] == 1

    def test_merge(self):
        a = _votes(hi=(1, 0, 0, 0))
        b = _votes(hi=(2, 0, 0, 0), lo=(0, 1, 0, 0))
        a.merge(b)
        assert a.hi_q[0] == 3 and a.low_q[1] == 1 and a.count == 4


class TestResolve:
    def test_clear_winner_extends(self):
        state, code = resolve_extension(_votes(hi=(5, 0, 0, 0)))
        assert state is WalkState.EXTEND and code == 0

    def test_insufficient_depth_ends(self):
        state, _ = resolve_extension(_votes(hi=(1, 0, 0, 0)))
        assert state is WalkState.END  # min_depth=2 by default

    def test_tie_is_fork(self):
        state, _ = resolve_extension(_votes(hi=(3, 3, 0, 0)))
        assert state is WalkState.FORK

    def test_competitive_runner_is_fork(self):
        # 4 vs 3 with dominance 2: 3*2 > 4 -> fork
        state, _ = resolve_extension(_votes(hi=(4, 3, 0, 0)))
        assert state is WalkState.FORK

    def test_dominant_winner_extends(self):
        state, code = resolve_extension(_votes(hi=(7, 3, 0, 0)))
        assert state is WalkState.EXTEND and code == 0

    def test_low_quality_pool_used_when_hi_thin(self):
        # hi max is 1 < hi_q_min_depth=2 -> pool hi+low: T has 1+3=4
        state, code = resolve_extension(_votes(hi=(0, 0, 0, 1), lo=(0, 0, 0, 3)))
        assert state is WalkState.EXTEND and code == 3

    def test_hi_quality_overrides_noisy_low(self):
        # hi counts trusted (max>=2): A wins 3-0 despite low-q C majority.
        state, code = resolve_extension(_votes(hi=(3, 0, 0, 0), lo=(0, 9, 0, 0)))
        assert state is WalkState.EXTEND and code == 0

    def test_zero_votes_end(self):
        state, _ = resolve_extension(_votes())
        assert state is WalkState.END

    def test_custom_policy_min_depth_one(self):
        policy = WalkPolicy(min_depth=1, hi_q_min_depth=1)
        state, code = resolve_extension(_votes(hi=(0, 1, 0, 0)), policy)
        assert state is WalkState.EXTEND and code == 1

    def test_custom_dominance(self):
        policy = WalkPolicy(dominance=1)  # any strict winner extends
        state, code = resolve_extension(_votes(hi=(4, 3, 0, 0)), policy)
        assert state is WalkState.EXTEND and code == 0

    @given(st.lists(st.integers(0, 50), min_size=4, max_size=4),
           st.lists(st.integers(0, 50), min_size=4, max_size=4))
    def test_resolution_total(self, hi, lo):
        """Every vote combination resolves to exactly one defined state."""
        state, code = resolve_extension(_votes(hi=tuple(hi), lo=tuple(lo)))
        assert state in (WalkState.EXTEND, WalkState.END, WalkState.FORK)
        if state is WalkState.EXTEND:
            assert 0 <= code <= 3
        else:
            assert code == -1

    @given(st.integers(0, 3), st.integers(2, 40))
    def test_unanimous_always_extends(self, base, n):
        hi = [0, 0, 0, 0]
        hi[base] = n
        state, code = resolve_extension(_votes(hi=tuple(hi)))
        assert state is WalkState.EXTEND and code == base


def test_describe_votes():
    s = describe_votes(_votes(hi=(3, 0, 1, 0), lo=(1, 0, 0, 2)))
    assert s == "A:3+1 C:0+0 G:1+0 T:0+2 (7 reads)"
