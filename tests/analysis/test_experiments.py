"""Tests for the experiment suite (table/figure regeneration)."""

import pytest

from repro.analysis.experiments import ExperimentConfig, ExperimentSuite
from repro.simt.device import PLATFORMS

# One tiny suite shared by every test in this module (runs are cached).
CONFIG = ExperimentConfig(scale=0.005, k_values=(21, 77))


@pytest.fixture(scope="module")
def suite():
    s = ExperimentSuite(CONFIG)
    s.run_all()
    return s


class TestStaticTables:
    def test_table1(self, suite):
        rows = suite.table1()
        assert [r["programming_model"] for r in rows] == ["CUDA", "HIP", "SYCL"]

    def test_table3(self, suite):
        rows = suite.table3()
        assert rows[0]["l2_cache_mb"] == 40
        assert rows[1]["warp_size"] == 64
        assert rows[2]["l2_cache_mb"] == 204

    def test_table5_exact(self, suite):
        rows = {r["k"]: r for r in suite.table5()}
        assert rows[21]["INTOP1"] == 215
        assert rows[77]["INTOP1"] == 635

    def test_table6_exact(self, suite):
        rows = {r["k"]: r for r in suite.table6()}
        assert rows[21]["theoretical_II"] == pytest.approx(4.831, abs=0.001)
        assert rows[77]["theoretical_II"] == pytest.approx(4.942, abs=0.001)


class TestMeasuredTables:
    def test_table2_within_tolerance(self, suite):
        for row in suite.table2():
            assert row["contigs"] == row["contigs_target"]
            assert row["insertions"] == pytest.approx(
                row["insertions_target"], rel=0.08
            )

    def test_table4_structure(self, suite):
        data = suite.table4()
        assert len(data["rows"]) == len(CONFIG.k_values)
        for row in data["rows"]:
            for dev in PLATFORMS:
                assert 0 < row[dev.name] <= 100
            assert 0 < row["P_arch"] <= 100
        assert 0 < data["average_P_arch"] <= 100

    def test_table7_structure(self, suite):
        data = suite.table7()
        for row in data["rows"]:
            assert 0 < row["P_alg"] <= 100


class TestFigures:
    def test_figure5_paper_ordering(self, suite):
        """The headline Figure 5 relations: AMD slowest at large k."""
        rows = {r["k"]: r for r in suite.figure5()}
        assert rows[77]["MI250X"] > rows[77]["A100"]
        assert rows[77]["MI250X"] > rows[77]["MAX1550"]
        assert rows[77]["MAX1550"] <= rows[77]["A100"]
        # AMD's characteristic blow-up between small and large k
        assert rows[77]["MI250X"] > rows[21]["MI250X"]

    def test_figure6_structure_and_bounds(self, suite):
        data = suite.figure6()
        assert set(data) == {d.name for d in PLATFORMS}
        for dev in PLATFORMS:
            entry = data[dev.name]
            assert entry["machine_balance"] == pytest.approx(
                dev.machine_balance, abs=0.001
            )
            for p in entry["points"]:
                assert p["bound"] in ("memory", "compute")
                assert 0 < p["pct_of_ceiling"] <= 100

    def test_figure6_amd_lowest_ii(self, suite):
        """AMD's 64-byte lines + small L2 give it the lowest intensity."""
        data = suite.figure6()
        for i, k in enumerate(CONFIG.k_values):
            amd = data["MI250X"]["points"][i]["II"]
            assert amd < data["A100"]["points"][i]["II"]
            assert amd < data["MAX1550"]["points"][i]["II"]

    def test_figure7_amd_moves_more_bytes(self, suite):
        """Figure 7b: dots above the diagonal — AMD moves more than A100."""
        for row in suite.figure7():
            assert row["MI250X_gbytes"] > row["A100_gbytes"]

    def test_figure8_columns(self, suite):
        for row in suite.figure8():
            assert row["A100_gbytes"] > 0 and row["MAX1550_gbytes"] > 0

    def test_figure9_points(self, suite):
        points = suite.figure9()
        assert len(points) == len(PLATFORMS) * len(CONFIG.k_values)
        for p in points:
            assert 0 <= p.algorithm_efficiency <= 1
            assert 0 <= p.architectural_efficiency <= 1

    def test_timing_breakdown_rows(self, suite):
        rows = suite.timing_breakdown()
        assert len(rows) == len(PLATFORMS) * len(CONFIG.k_values)
        assert all(r["bound"] in ("issue", "memory", "latency") for r in rows)


class TestCaching:
    def test_run_is_memoized(self, suite):
        a = suite.run(PLATFORMS[0], 21)
        b = suite.run(PLATFORMS[0], 21)
        assert a is b

    def test_dataset_cached(self, suite):
        assert suite.dataset(21) is suite.dataset(21)
