"""Scale-invariance of the reproduction: results must not depend on the
dataset scale the benches happen to run at.

The extrapolation machinery (cache-model full-size pressure + profile
scaling) exists precisely so that a 0.5 % run predicts what a 2 % run
predicts; this test pins that property for the headline metrics.
"""

import pytest

from repro.analysis.experiments import ExperimentConfig, ExperimentSuite
from repro.simt.device import PLATFORMS

K = 21


@pytest.fixture(scope="module")
def two_scales():
    small = ExperimentSuite(ExperimentConfig(scale=0.005, k_values=(K,)))
    large = ExperimentSuite(ExperimentConfig(scale=0.02, k_values=(K,)))
    return small, large


class TestScaleInvariance:
    def test_times_stable(self, two_scales):
        small, large = two_scales
        ts = {r["k"]: r for r in small.figure5()}[K]
        tl = {r["k"]: r for r in large.figure5()}[K]
        for dev in PLATFORMS:
            assert ts[dev.name] == pytest.approx(tl[dev.name], rel=0.15)

    def test_intensity_stable(self, two_scales):
        small, large = two_scales
        for dev in PLATFORMS:
            ps = small.run(dev, K).full_profile
            pl = large.run(dev, K).full_profile
            assert ps.intop_intensity == pytest.approx(pl.intop_intensity,
                                                       rel=0.15)

    def test_device_ordering_stable(self, two_scales):
        small, large = two_scales
        for suite in two_scales:
            t = {r["k"]: r for r in suite.figure5()}[K]
            assert t["MI250X"] > t["A100"]

    def test_extrapolated_intops_match_scale_ratio(self, two_scales):
        small, large = two_scales
        for dev in PLATFORMS[:1]:
            ps = small.run(dev, K).full_profile
            pl = large.run(dev, K).full_profile
            # both extrapolate to full size -> total INTOPs agree
            assert ps.intops == pytest.approx(pl.intops, rel=0.1)
