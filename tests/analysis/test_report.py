"""Tests for the ASCII report renderers."""

from repro.analysis.report import (
    render_dict_table,
    render_resilience_summary,
    render_series,
    render_table,
    union_headers,
)


class TestUnionHeaders:
    def test_first_seen_order(self):
        rows = [{"a": 1, "b": 2}, {"b": 3, "c": 4}, {"a": 5}]
        assert union_headers(rows) == ["a", "b", "c"]

    def test_empty(self):
        assert union_headers([]) == []


class TestRenderTable:
    def test_basic(self):
        out = render_table(["a", "bb"], [[1, 2.5], [30, 4]])
        lines = out.splitlines()
        assert lines[0].split(" | ")[0].strip() == "a"
        assert "-+-" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        out = render_table(["x"], [[1]], title="T")
        assert out.startswith("T\n")

    def test_empty_rows(self):
        out = render_table(["col"], [])
        assert "col" in out

    def test_number_formatting(self):
        out = render_table(["v"], [[1234567], [0.00123], [12.345]])
        assert "1,234,567" in out
        assert "0.001" in out
        assert "12.3" in out

    def test_alignment_consistent(self):
        out = render_table(["name", "val"], [["a", 1], ["long-name", 22]])
        widths = {len(line) for line in out.splitlines()}
        assert len(widths) == 1  # all lines same width


class TestRenderDictTable:
    def test_keys_become_headers(self):
        out = render_dict_table([{"k": 21, "t": 0.5}, {"k": 33, "t": 0.7}])
        assert out.splitlines()[0].startswith("k")

    def test_empty(self):
        assert render_dict_table([], title="none") == "none"

    def test_heterogeneous_rows_blank_filled(self):
        # mixed shapes (e.g. resilience-summary rows from different
        # policies) used to raise KeyError on rows missing a header
        out = render_dict_table([{"device": "A100", "k": 21},
                                 {"device": "MI250X", "extra": 7}])
        lines = out.splitlines()
        assert lines[0].split(" | ")[-1].strip() == "extra"
        assert len(lines) == 4
        assert "7" in lines[3]


class TestRenderResilienceSummary:
    def test_no_rows(self):
        assert render_resilience_summary([]) == "resilience: no runs recorded"

    def test_all_clean(self):
        rows = [{"device": "A100", "k": 21, "degraded_contigs": 0,
                 "from_checkpoint": False}]
        assert "all 1 runs clean" in render_resilience_summary(rows)

    def test_heterogeneous_interesting_rows(self):
        rows = [
            {"device": "A100", "k": 21, "degraded_contigs": 2},
            {"device": "MI250X", "k": 33, "from_checkpoint": True,
             "overflow_retries": 1},
        ]
        out = render_resilience_summary(rows)
        assert out.startswith("Resilience summary")
        assert "from_checkpoint" in out and "degraded_contigs" in out


class TestRenderSeries:
    def test_rows(self):
        out = render_series("fig", [1, 2], [10.0, 20.0], "k", "ms")
        assert "fig:" in out
        assert "k=1" in out and "ms=20" in out
