"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.genomics.io import read_fasta


class TestGenerate:
    def test_generate_writes_dat(self, tmp_path, capsys):
        out = tmp_path / "d.dat"
        rc = main(["generate", "21", str(out), "--scale", "0.001"])
        assert rc == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_generate_rejects_bad_k(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "42", str(tmp_path / "x.dat")])


class TestRun:
    def test_run_assembles_dat(self, tmp_path, capsys):
        dat = tmp_path / "in.dat"
        fasta = tmp_path / "out.fa"
        assert main(["generate", "21", str(dat), "--scale", "0.001"]) == 0
        rc = main(["run", str(dat), "21", str(fasta)])
        assert rc == 0
        records = read_fasta(fasta)
        assert records
        # extended sequences carry the walk states in their headers
        assert all("right=" in name and "left=" in name for name, _ in records)

    def test_run_on_other_device(self, tmp_path):
        dat = tmp_path / "in.dat"
        main(["generate", "33", str(dat), "--scale", "0.001"])
        assert main(["run", str(dat), "33", str(tmp_path / "o.fa"),
                     "--device", "MI250X"]) == 0

    def test_run_with_trace_memory_model(self, tmp_path, capsys):
        dat = tmp_path / "in.dat"
        main(["generate", "21", str(dat), "--scale", "0.001"])
        capsys.readouterr()
        rc = main(["run", str(dat), "21", str(tmp_path / "o.fa"),
                   "--memory-model", "trace"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "exact replay:" in out
        assert "L2 hit rate" in out and "l2_churn" in out

    def test_scalar_backend_rejects_trace_model(self, tmp_path, capsys):
        dat = tmp_path / "in.dat"
        main(["generate", "21", str(dat), "--scale", "0.001"])
        rc = main(["run", str(dat), "21", str(tmp_path / "o.fa"),
                   "--backend", "scalar", "--memory-model", "trace"])
        assert rc == 2
        assert "scalar" in capsys.readouterr().err


class TestExperiment:
    def test_static_tables(self, capsys):
        assert main(["experiment", "table5"]) == 0
        out = capsys.readouterr().out
        assert "635" in out  # INTOP1 at k=77

    def test_table6(self, capsys):
        assert main(["experiment", "table6"]) == 0
        assert "4.831" in capsys.readouterr().out

    def test_measured_figure(self, capsys):
        assert main(["experiment", "fig5", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "A100" in out and "MI250X" in out and "MAX1550" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "figure99"]) == 2
