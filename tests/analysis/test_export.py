"""Tests for the TSV/JSON export of tables and figures."""

import json

import pytest

from repro.analysis.experiments import ExperimentConfig, ExperimentSuite
from repro.analysis.export import export_all


@pytest.fixture(scope="module")
def exported(tmp_path_factory):
    out = tmp_path_factory.mktemp("figs")
    suite = ExperimentSuite(ExperimentConfig(scale=0.004, k_values=(21,)))
    written = export_all(suite, out)
    return out, written


class TestExport:
    def test_all_files_written(self, exported):
        out, written = exported
        names = {p.name for p in written}
        for expected in (
            "table1_platforms.tsv", "table5_hash_intops.tsv",
            "table6_theoretical_ii.tsv", "fig5_kernel_time.tsv",
            "fig6_roofline_a100.tsv", "fig6_ceiling_mi250x.tsv",
            "fig9_iso_curves.tsv", "summary.json",
        ):
            assert expected in names
            assert (out / expected).exists()

    def test_tsv_structure(self, exported):
        out, _ = exported
        lines = (out / "table6_theoretical_ii.tsv").read_text().splitlines()
        assert lines[0].startswith("#")
        headers = lines[1].split("\t")
        assert "theoretical_II" in headers
        first = dict(zip(headers, lines[2].split("\t")))
        assert float(first["theoretical_II"]) == pytest.approx(4.831, abs=0.001)

    def test_summary_json(self, exported):
        out, _ = exported
        summary = json.loads((out / "summary.json").read_text())
        assert summary["scale"] == 0.004
        assert summary["k_values"] == [21]
        assert 0 < summary["average_P_arch_pct"] <= 100
        assert len(summary["files"]) >= 18

    def test_fig5_rows_parse(self, exported):
        out, _ = exported
        lines = (out / "fig5_kernel_time.tsv").read_text().splitlines()
        headers = lines[1].split("\t")
        row = dict(zip(headers, lines[2].split("\t")))
        assert float(row["A100"]) > 0
        assert float(row["MI250X"]) > float(row["A100"])

    def test_scale_recorded_in_comments(self, exported):
        out, _ = exported
        assert "scale=0.004" in (out / "fig5_kernel_time.tsv").read_text()

    def test_heterogeneous_rows_union_headers(self, tmp_path):
        from repro.analysis.export import _dicts_to_tsv

        p = tmp_path / "het.tsv"
        _dicts_to_tsv(p, "mixed", [{"a": 1, "b": 2}, {"b": 3, "c": 4}])
        lines = p.read_text().splitlines()
        assert lines[1].split("\t") == ["a", "b", "c"]
        assert lines[2].split("\t") == ["1", "2", ""]
        assert lines[3].split("\t") == ["", "3", "4"]

    def test_cli_export(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["export", str(tmp_path / "out"), "--scale", "0.003"])
        assert rc == 0
        assert (tmp_path / "out" / "summary.json").exists()
