"""Golden regression test, mirroring the paper artifact's workflow.

The artifact's ``test_script.sh`` "verifies the results for correctness
against a result file"; this test does the same: a pinned dataset
(deterministic generator seed) must assemble to byte-identical output on
every platform and across refactorings. If an *intentional* algorithm
change shifts these hashes, regenerate them with::

    python -m repro generate 21 golden.dat --scale 0.0008 --seed 777
    python -m repro run golden.dat 21 golden.fa
    sha256sum golden.dat golden.fa
"""

import hashlib

import pytest

from repro.cli import main

GOLDEN_DAT_SHA256 = "f2babde9838a7825173633b09600da9f399edfc81b317dd8ffa71437da0c35cb"
GOLDEN_FA_SHA256 = "328ed22b66b5b154e42e8d75dd3150d2c096b9af7d8ff5a5273ea81794b383ba"


def _sha(path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


@pytest.fixture(scope="module")
def golden(tmp_path_factory):
    d = tmp_path_factory.mktemp("golden")
    dat, fa = d / "golden.dat", d / "golden.fa"
    assert main(["generate", "21", str(dat), "--scale", "0.0008",
                 "--seed", "777"]) == 0
    assert main(["run", str(dat), "21", str(fa)]) == 0
    return dat, fa


class TestGolden:
    def test_dataset_is_reproducible(self, golden):
        dat, _ = golden
        assert _sha(dat) == GOLDEN_DAT_SHA256

    def test_assembly_output_is_reproducible(self, golden):
        _, fa = golden
        assert _sha(fa) == GOLDEN_FA_SHA256

    def test_all_devices_agree_functionally(self, golden, tmp_path):
        """The three ports must produce identical extended contigs — the
        artifact's correctness check across its CUDA/HIP/SYCL branches."""
        dat, fa = golden
        reference = fa.read_bytes()
        for device in ("MI250X", "MAX1550"):
            out = tmp_path / f"{device}.fa"
            assert main(["run", str(dat), "21", str(out),
                         "--device", device]) == 0
            assert out.read_bytes() == reference
