"""Tests for walk-outcome statistics."""

import numpy as np
import pytest

from repro.analysis.walkstats import (
    WalkStatistics,
    collect_walk_stats,
    summarize_across_k,
)
from repro.core.extension import PRODUCTION_POLICY, WalkState
from repro.datasets.generate import generate_paper_dataset
from repro.kernels import CudaLocalAssemblyKernel
from repro.simt.device import A100


@pytest.fixture(scope="module")
def runs():
    kern = CudaLocalAssemblyKernel(A100, policy=PRODUCTION_POLICY)
    out = {}
    for k in (21, 77):
        contigs = generate_paper_dataset(k, scale=0.004)
        out[k] = kern.run(contigs, k)
    return out


class TestWalkStatistics:
    def test_counts_both_ends(self, runs):
        s = collect_walk_stats(runs[21])
        assert s.n_walks == 2 * runs[21].profile.contigs

    def test_states_partition_walks(self, runs):
        s = collect_walk_stats(runs[21])
        assert sum(s.states.values()) == s.n_walks

    def test_lengths_match_profile(self, runs):
        s = collect_walk_stats(runs[21])
        assert int(s.lengths.sum()) == runs[21].profile.extension_bases

    def test_mean_length_grows_with_k(self, runs):
        """Table II's workload shape: k=77 walks are several times longer."""
        s21 = collect_walk_stats(runs[21])
        s77 = collect_walk_stats(runs[77])
        assert s77.mean_length > 2 * s21.mean_length

    def test_cv_shows_imbalance(self, runs):
        s = collect_walk_stats(runs[21])
        assert s.coefficient_of_variation > 0.3  # walks are NOT uniform

    def test_histogram_covers_all_walks(self, runs):
        s = collect_walk_stats(runs[21])
        hist = s.length_histogram(8)
        assert len(hist) == 8
        assert sum(c for _, _, c in hist) == s.n_walks

    def test_summary_rows(self, runs):
        rows = summarize_across_k(runs)
        assert [r["k"] for r in rows] == [21, 77]
        for r in rows:
            assert 0 <= r["fork_frac"] <= 1
            assert r["mean_len"] > 0

    def test_empty_stats(self):
        s = WalkStatistics(k=21, lengths=np.empty(0, dtype=np.int64))
        assert s.mean_length == 0.0
        assert s.max_length == 0
        assert s.coefficient_of_variation == 0.0
        assert s.length_histogram() == []
        assert s.state_fraction(WalkState.END) == 0.0
