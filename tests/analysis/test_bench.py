"""Tests for the pinned-scale bench harness behind ``repro bench``."""

import copy
import json

from repro.analysis.bench import (
    MAX_REGRESSION,
    SMOKE,
    BenchScale,
    bench_contigs,
    compare_bench,
    run_scale,
)
from repro.cli import main

#: A sub-second scale for exercising the full measure/compare path.
TINY = BenchScale(name="smoke", n_contigs=4, k_schedule=(21,),
                  contig_length=100, flank_length=40, read_length=60,
                  depth=4, seed_window=30,
                  error_rate=0.005, lo_quality_fraction=0.1)


def _doc(scale=TINY, repeats=1):
    return {"schema": 1, "scales": {scale.name: run_scale(scale, repeats)}}


class TestRunScale:
    def test_deterministic_counters(self):
        a, b = run_scale(TINY, repeats=1), run_scale(TINY, repeats=1)
        assert a["counters"] == b["counters"]
        assert a["pins"] == b["pins"]

    def test_document_shape(self):
        doc = run_scale(TINY, repeats=1)
        assert doc["wall_s"] > 0
        assert doc["throughput_contigs_per_s"] > 0
        assert doc["peak_rss_kb"] > 0
        assert doc["counters"]["events"]  # instrumented pass counted events
        assert doc["counters"]["profile"]["contigs"] == TINY.n_contigs

    def test_contigs_pinned_by_seed(self):
        a, b = bench_contigs(SMOKE), bench_contigs(SMOKE)
        assert len(a) == SMOKE.n_contigs
        assert all(x.name == y.name for x, y in zip(a, b))


class TestCompareBench:
    def test_identical_passes(self):
        doc = _doc()
        assert compare_bench(doc, copy.deepcopy(doc)) == []

    def test_counter_divergence_names_the_leaf(self):
        base = _doc()
        cur = copy.deepcopy(base)
        cur["scales"]["smoke"]["counters"]["events"]["ProbeIteration"] += 1
        problems = compare_bench(base, cur)
        assert len(problems) == 1
        assert "identity diverged" in problems[0]
        assert "ProbeIteration" in problems[0]

    def test_timing_jitter_tolerated_but_regression_caught(self):
        base = _doc()
        cur = copy.deepcopy(base)
        tp = base["scales"]["smoke"]["throughput_contigs_per_s"]
        cur["scales"]["smoke"]["throughput_contigs_per_s"] = tp * 0.9
        assert compare_bench(base, cur) == []  # within the 25% gate
        cur["scales"]["smoke"]["throughput_contigs_per_s"] = \
            tp * (1 - MAX_REGRESSION) * 0.9
        problems = compare_bench(base, cur)
        assert len(problems) == 1 and "regressed" in problems[0]

    def test_schema_change_rejected(self):
        base = _doc()
        cur = copy.deepcopy(base)
        cur["schema"] = 99
        assert any("schema" in p for p in compare_bench(base, cur))

    def test_missing_scale_skipped(self):
        base = _doc()
        assert compare_bench(base, {"schema": 1, "scales": {}}) == []


class TestBenchCli:
    def test_writes_and_gates(self, tmp_path, capsys, monkeypatch):
        import repro.analysis.bench as bench_mod

        monkeypatch.setattr(bench_mod, "SMOKE", TINY)
        monkeypatch.setattr(bench_mod, "_SCALES", {"smoke": TINY})
        out = tmp_path / "BENCH_engine.json"
        rc = main(["bench", "--smoke", "--repeats", "1",
                   "--output", str(out), "--baseline", str(out)])
        assert rc == 0
        assert "no baseline" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert set(doc["scales"]) == {"smoke"}

        # second run gates against the first and passes
        rc = main(["bench", "--smoke", "--repeats", "1",
                   "--output", str(out), "--baseline", str(out)])
        assert rc == 0
        assert "identity match" in capsys.readouterr().out

    def test_identity_divergence_fails(self, tmp_path, capsys, monkeypatch):
        import repro.analysis.bench as bench_mod

        monkeypatch.setattr(bench_mod, "SMOKE", TINY)
        monkeypatch.setattr(bench_mod, "_SCALES", {"smoke": TINY})
        out = tmp_path / "bench.json"
        assert main(["bench", "--smoke", "--repeats", "1",
                     "--output", str(out), "--baseline", str(out)]) == 0
        doc = json.loads(out.read_text())
        doc["scales"]["smoke"]["counters"]["k"] += 1
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(doc))
        rc = main(["bench", "--smoke", "--repeats", "1",
                   "--output", str(out), "--baseline", str(baseline)])
        assert rc == 1
        assert "identity diverged" in capsys.readouterr().err

    def test_smoke_rerun_preserves_other_scales(self, tmp_path, monkeypatch):
        import repro.analysis.bench as bench_mod

        monkeypatch.setattr(bench_mod, "SMOKE", TINY)
        monkeypatch.setattr(bench_mod, "_SCALES", {"smoke": TINY})
        out = tmp_path / "bench.json"
        assert main(["bench", "--smoke", "--repeats", "1",
                     "--output", str(out), "--baseline", str(out)]) == 0
        doc = json.loads(out.read_text())
        doc["scales"]["full"] = {"pins": {}, "counters": {}, "wall_s": 1.0,
                                 "throughput_contigs_per_s": 1.0,
                                 "peak_rss_kb": 1}
        out.write_text(json.dumps(doc))
        assert main(["bench", "--smoke", "--repeats", "1",
                     "--output", str(out), "--baseline", str(out)]) == 0
        rewritten = json.loads(out.read_text())
        assert set(rewritten["scales"]) == {"smoke", "full"}
