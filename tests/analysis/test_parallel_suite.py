"""Process-parallel ``run_all``: byte parity with serial, crash/resume.

The tentpole guarantee: ``run_all(workers=N)`` is an *execution*
strategy, not a semantic one — every exported artifact is byte-identical
to the serial sweep, including when a mid-flight crash forces a
checkpoint resume.
"""

import pytest

from repro.analysis.experiments import ExperimentConfig, ExperimentSuite
from repro.analysis.export import export_all
from repro.errors import ReproError
from repro.resilience import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedCrashError,
)

#: Tiny but real: 3 devices x 1 k = 3 grid cells.
CFG = dict(scale=0.004, seed=7, k_values=(21,))


def _export_bytes(suite: ExperimentSuite, out_dir) -> dict[str, bytes]:
    export_all(suite, out_dir)
    return {p.name: p.read_bytes() for p in out_dir.iterdir()}


@pytest.fixture(scope="module")
def serial_export(tmp_path_factory):
    out = tmp_path_factory.mktemp("serial")
    return _export_bytes(ExperimentSuite(ExperimentConfig(**CFG)), out)


class TestParity:
    def test_parallel_export_byte_identical(self, tmp_path, serial_export):
        suite = ExperimentSuite(ExperimentConfig(**CFG, workers=4))
        parallel = _export_bytes(suite, tmp_path / "parallel")
        assert parallel.keys() == serial_export.keys()
        for name, blob in serial_export.items():
            assert parallel[name] == blob, f"{name} differs from serial"
        assert not any(r.from_checkpoint for r in suite._runs.values())

    def test_explicit_workers_arg_overrides_config(self, serial_export,
                                                   tmp_path):
        suite = ExperimentSuite(ExperimentConfig(**CFG))  # workers=1 config
        suite.run_all(workers=2)
        parallel = _export_bytes(suite, tmp_path / "arg")
        assert parallel == serial_export

    def test_rejects_bad_workers(self):
        with pytest.raises(ReproError, match="workers must be positive"):
            ExperimentSuite(ExperimentConfig(**CFG)).run_all(workers=0)


@pytest.mark.resilience
class TestCrashResume:
    def test_mid_flight_crash_then_resume_byte_identical(
            self, tmp_path, serial_export):
        ckpt = tmp_path / "ckpt"
        # ordinal-targeted specs are racy across processes; device/k
        # targeting pins the crash to exactly one grid cell
        inj = FaultInjector(FaultPlan(faults=(
            FaultSpec(FaultKind.SUITE_CRASH, device="MI250X", k=21),
        )))
        crashed = ExperimentSuite(ExperimentConfig(
            **CFG, checkpoint_dir=str(ckpt), fault_injector=inj, workers=2))
        with pytest.raises(InjectedCrashError):
            crashed.run_all()
        done = crashed.checkpoint_store().completed()
        assert ("MI250X", 21) not in done
        assert not list(ckpt.glob("*.tmp"))  # no scratch leaks from the crash

        resumed = ExperimentSuite(ExperimentConfig(
            **CFG, checkpoint_dir=str(ckpt), workers=2))
        exported = _export_bytes(resumed, tmp_path / "resumed")
        assert exported == serial_export
        flags = {key: rec.from_checkpoint
                 for key, rec in resumed._runs.items()}
        assert flags[("MI250X", 21)] is False  # re-executed after the crash
        assert sum(flags.values()) == len(done)  # the rest came from disk
        summary = resumed.resilience_summary()
        assert sum(r["from_checkpoint"] for r in summary) == len(done)

    def test_parallel_run_checkpoints_resumable_serially(
            self, tmp_path, serial_export):
        ckpt = tmp_path / "ckpt2"
        ExperimentSuite(ExperimentConfig(
            **CFG, checkpoint_dir=str(ckpt), workers=2)).run_all()
        # a serial suite resumes everything the parallel workers wrote
        resumed = ExperimentSuite(ExperimentConfig(
            **CFG, checkpoint_dir=str(ckpt)))
        exported = _export_bytes(resumed, tmp_path / "serial_resume")
        assert exported == serial_export
        assert all(r.from_checkpoint for r in resumed._runs.values())


class TestCli:
    def test_export_workers_flag(self, tmp_path, serial_export):
        from repro.cli import main

        rc = main(["export", str(tmp_path / "out"), "--scale", "0.004",
                   "--seed", "7", "--workers", "2"])
        assert rc == 0
        # CLI runs the full k schedule; just spot-check it produced output
        assert (tmp_path / "out" / "summary.json").exists()
