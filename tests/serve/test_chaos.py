"""Seeded chaos suite: the service under planned faults, byte-for-byte.

The in-process scenario drives a 32-job burst through a fault plan
(worker crashes, a wave stall, checkpoint corruption) and asserts every
job completes with results byte-identical to an undisturbed run — the
record/replay parity invariant makes bisection re-runs exact, so chaos
must not be observable in the payloads. The subprocess scenarios kill
the real ``repro serve`` process (SIGKILL, then SIGTERM) and assert the
journal's promises: no acknowledged job is lost, and a graceful drain
finishes its work before exiting.
"""

import asyncio
import http.client
import json
import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.resilience import FaultKind, FaultPlan, FaultSpec
from repro.serve import AssemblyService, JobJournal
from repro.serve.protocol import JobOptions, job_fingerprint

from .test_service import make_dat, poll_done, request

pytestmark = pytest.mark.chaos

N_JOBS = 32
K_SCHEDULE = [21]


def submit_all(port, dats):
    async def one(dat):
        status, body = await request(port, "POST", "/v1/jobs",
                                     {"dat": dat, "k_schedule": K_SCHEDULE})
        assert status == 202, body
        return body["job_id"]
    return asyncio.gather(*[one(dat) for dat in dats])


async def results_for(port, job_ids):
    payloads = []
    for job_id in job_ids:
        body = await poll_done(port, job_id, timeout=60.0)
        assert body["status"] == "done", body
        _, payload = await request(port, "GET", f"/v1/jobs/{job_id}/result")
        payloads.append(payload)
    return payloads


class TestChaosPlan:
    def test_32_job_run_is_byte_identical_under_faults(self, tmp_path):
        dats = [make_dat(n_contigs=1, seed=100 + i) for i in range(N_JOBS)]
        corrupt_fp = job_fingerprint(
            dats[0], JobOptions(k_schedule=tuple(K_SCHEDULE)))
        plan = FaultPlan(seed=7, faults=(
            FaultSpec(FaultKind.WORKER_CRASH, times=3),
            FaultSpec(FaultKind.WAVE_STALL, delay_s=0.3),
            FaultSpec(FaultKind.CHECKPOINT_CORRUPTION,
                      fingerprint=corrupt_fp),
        ))

        async def run(service):
            port = await service.start()
            try:
                ids = await submit_all(port, dats)
                return await results_for(port, ids)
            finally:
                await service.stop()

        baseline = asyncio.run(run(
            AssemblyService(window_s=0.25, max_in_flight=64)))

        chaos_service = AssemblyService(
            window_s=0.25, max_in_flight=64,
            checkpoint_dir=str(tmp_path), fault_plan=plan)
        disturbed = asyncio.run(run(chaos_service))

        # every planned fault actually fired
        assert chaos_service.supervisor.injector.counts() == {
            "worker-crash": 3, "wave-stall": 1, "checkpoint-corruption": 1}
        sup = chaos_service.supervisor.stats()
        assert sup["waves_crashed"] == 3
        assert sup["bisections"] >= 3
        assert sup["jobs_failed"] == 0  # chaos never cost a job
        # and none of it is observable in the results: byte-identical
        for clean, noisy in zip(baseline, disturbed):
            assert json.dumps(clean, sort_keys=True) == \
                json.dumps(noisy, sort_keys=True)

    def test_corrupt_checkpoint_quarantined_then_recomputed(self, tmp_path):
        dat = make_dat(n_contigs=1, seed=3)
        fp = job_fingerprint(dat, JobOptions(k_schedule=tuple(K_SCHEDULE)))
        plan = FaultPlan(faults=(
            FaultSpec(FaultKind.CHECKPOINT_CORRUPTION, fingerprint=fp),
            FaultSpec(FaultKind.SLOW_DISK, fingerprint=fp, delay_s=0.05),
        ))

        async def scenario():
            service = AssemblyService(window_s=0.01,
                                      checkpoint_dir=str(tmp_path),
                                      fault_plan=plan)
            port = await service.start()
            try:
                body = {"dat": dat, "k_schedule": K_SCHEDULE}
                # first run: slow-disk delays the save, corruption then
                # damages the file on disk after the atomic write
                _, first = await request(port, "POST", "/v1/jobs", body)
                await poll_done(port, first["job_id"])
                _, r1 = await request(
                    port, "GET", f"/v1/jobs/{first['job_id']}/result")
                # resubmission: the corrupt checkpoint is quarantined and
                # the job recomputes instead of resuming
                _, second = await request(port, "POST", "/v1/jobs", body)
                done = await poll_done(port, second["job_id"])
                _, r2 = await request(
                    port, "GET", f"/v1/jobs/{second['job_id']}/result")
                # third time: the recompute re-checkpointed cleanly
                _, third = await request(port, "POST", "/v1/jobs", body)
                _, stats = await request(port, "GET", "/v1/stats")
                return done, r1, r2, third, stats
            finally:
                await service.stop()

        done, r1, r2, third, stats = asyncio.run(scenario())
        assert done.get("resumed") is None  # recomputed, not resumed
        assert stats["checkpoints"]["quarantined"] == 1
        assert third.get("resumed") is True
        # the recompute's assembly output is identical; only cache
        # provenance (warm prep-cache hits) may differ between the runs
        for field in ("k", "right", "left", "degraded", "retried"):
            assert r1["result"][field] == r2["result"][field]


# ----------------------------------------------------------------------
# subprocess scenarios: the real process, the real signals


def http_request(port, method, path, payload=None, timeout=30.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = json.dumps(payload) if payload is not None else None
        conn.request(method, path, body=body,
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read() or b"{}")
    finally:
        conn.close()


def http_poll_done(port, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while True:
        _, body = http_request(port, "GET", f"/v1/jobs/{job_id}")
        if body.get("status") in ("done", "failed"):
            return body
        if time.monotonic() > deadline:
            raise AssertionError(f"job {job_id} never finished: {body}")
        time.sleep(0.05)


def start_serve(*extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)
    line = proc.stdout.readline()
    match = re.search(r"http://127\.0\.0\.1:(\d+)", line)
    if match is None:
        proc.kill()
        raise AssertionError(
            f"serve never bound: {line!r}\n{proc.stdout.read()}")
    return proc, int(match.group(1))


class TestKillMinusNine:
    def test_recover_loses_no_acknowledged_job(self, tmp_path):
        journal = str(tmp_path / "jobs.wal")
        ckpt = str(tmp_path / "ckpt")
        dats = [make_dat(n_contigs=1, seed=s) for s in (1, 2, 3)]
        # a huge window: acknowledged jobs sit queued, never dispatched
        proc, port = start_serve("--journal", journal,
                                 "--checkpoint-dir", ckpt,
                                 "--window-ms", "60000")
        try:
            ids = []
            for dat in dats:
                status, body = http_request(
                    port, "POST", "/v1/jobs",
                    {"dat": dat, "k_schedule": K_SCHEDULE})
                assert status == 202, body
                ids.append(body["job_id"])
        finally:
            proc.kill()  # SIGKILL: no drain, no shutdown record
            proc.wait(timeout=30)

        proc, port = start_serve("--journal", journal,
                                 "--checkpoint-dir", ckpt,
                                 "--recover", "--window-ms", "5")
        try:
            for job_id, dat in zip(ids, dats):
                body = http_poll_done(port, job_id)
                assert body["status"] == "done", body
                assert body.get("recovered") is True
                status, payload = http_request(
                    port, "GET", f"/v1/jobs/{job_id}/result")
                assert status == 200 and payload["ok"]
            # the recovered run checkpointed: a resubmission resumes
            status, body = http_request(
                port, "POST", "/v1/jobs",
                {"dat": dats[0], "k_schedule": K_SCHEDULE})
            assert body.get("resumed") is True
            _, stats = http_request(port, "GET", "/v1/stats")
            assert stats["journal"]["recovered_pending"] == 3
        finally:
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        assert "stopped (drained)" in out
        state = JobJournal.replay(journal)
        assert state.clean_shutdown
        assert state.pending() == []


class TestGracefulDrain:
    def test_sigterm_finishes_in_flight_work_then_exits(self, tmp_path):
        journal = str(tmp_path / "drain.wal")
        dats = [make_dat(n_contigs=1, seed=s) for s in (5, 6)]
        # window long enough that the jobs are still coalescing when the
        # signal lands: the drain must flush and finish them
        proc, port = start_serve("--journal", journal,
                                 "--window-ms", "2000",
                                 "--drain-timeout", "60")
        ids = []
        try:
            for dat in dats:
                status, body = http_request(
                    port, "POST", "/v1/jobs",
                    {"dat": dat, "k_schedule": K_SCHEDULE})
                assert status == 202, body
                ids.append(body["job_id"])
        finally:
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0
        assert "stopped (drained)" in out
        state = JobJournal.replay(journal)
        assert state.clean_shutdown
        assert sorted(j["job_id"] for j in state.finished()) == sorted(ids)
        assert all(j.get("status") == "done" for j in state.finished())
