"""End-to-end tests of the assembly service over its real HTTP socket."""

import asyncio
import json

import numpy as np
import pytest

from repro.core.extension import PRODUCTION_POLICY
from repro.genomics.io import dumps_dat, loads_dat
from repro.kernels import CudaLocalAssemblyKernel
from repro.serve import AssemblyService
from repro.serve.worker import configure_worker, run_wave
from repro.simt.device import A100


def make_dat(n_contigs=2, seed=7) -> str:
    from repro.genomics.simulate import (
        ErrorProfile,
        ScenarioSpec,
        simulate_batch,
    )

    spec = ScenarioSpec(contig_length=120, flank_length=50, read_length=70,
                        depth=5, seed_window=40)
    errors = ErrorProfile(error_rate=0.0, lo_quality_fraction=0.0)
    rng = np.random.default_rng(seed)
    return dumps_dat([sc.contig for sc in
                      simulate_batch(n_contigs, spec, rng, errors)])


async def request(port, method, path, payload=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        body = json.dumps(payload).encode() if payload is not None else b""
        writer.write(f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
                     f"Content-Length: {len(body)}\r\n\r\n".encode() + body)
        await writer.drain()
        status = int((await reader.readline()).split()[1])
        length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode().partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        data = await reader.readexactly(length) if length else b""
        return status, json.loads(data or b"{}")
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def poll_done(port, job_id, timeout=30.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        _, body = await request(port, "GET", f"/v1/jobs/{job_id}")
        if body["status"] in ("done", "failed"):
            return body
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError(f"job {job_id} never finished: {body}")
        await asyncio.sleep(0.01)


class TestServiceEndToEnd:
    def test_burst_coalesces_and_matches_direct_engine_run(self):
        """Concurrent submissions fuse into one wave, results byte-exact."""
        dats = [make_dat(seed=s) for s in (1, 2, 3)]

        async def scenario():
            service = AssemblyService(window_s=0.05)
            port = await service.start()
            try:
                submits = await asyncio.gather(*[
                    request(port, "POST", "/v1/jobs",
                            {"dat": dat, "k_schedule": [21, 33]})
                    for dat in dats])
                assert all(status == 202 for status, _ in submits)
                ids = [body["job_id"] for _, body in submits]
                for job_id in ids:
                    body = await poll_done(port, job_id)
                    assert body["status"] == "done"
                results = [await request(port, "GET",
                                         f"/v1/jobs/{job_id}/result")
                           for job_id in ids]
                _, stats = await request(port, "GET", "/v1/stats")
                return results, stats
            finally:
                await service.stop()

        results, stats = asyncio.run(scenario())
        # the whole burst fused into a single megabatch wave
        assert stats["batcher"]["waves"] == 1
        assert stats["batcher"]["biggest_wave"] == 3
        assert stats["jobs"]["completed"] == 3
        # each tenant's result equals a direct solo engine run
        for dat, (status, payload) in zip(dats, results):
            assert status == 200 and payload["ok"]
            kern = CudaLocalAssemblyKernel(A100, policy=PRODUCTION_POLICY)
            solo = kern.run_schedule(loads_dat(dat), (21, 33))
            got = payload["result"]
            assert got["k"] == solo.k
            assert [[b, s] for b, s in got["right"]] == [
                [bases, state.value] for bases, state in solo.right]
            assert [[b, s] for b, s in got["left"]] == [
                [bases, state.value] for bases, state in solo.left]

    def test_resume_from_checkpoint_on_identical_resubmission(self, tmp_path):
        dat = make_dat(seed=11)
        body = {"dat": dat, "k_schedule": [21]}

        async def scenario():
            service = AssemblyService(window_s=0.01,
                                      checkpoint_dir=str(tmp_path))
            port = await service.start()
            try:
                _, first = await request(port, "POST", "/v1/jobs", body)
                done = await poll_done(port, first["job_id"])
                assert "resumed" not in done
                _, r1 = await request(
                    port, "GET", f"/v1/jobs/{first['job_id']}/result")
                _, second = await request(port, "POST", "/v1/jobs", body)
                assert second.get("resumed") is True
                _, r2 = await request(
                    port, "GET", f"/v1/jobs/{second['job_id']}/result")
                _, stats = await request(port, "GET", "/v1/stats")
                return r1, r2, stats
            finally:
                await service.stop()

        r1, r2, stats = asyncio.run(scenario())
        assert stats["jobs"]["resumed"] == 1
        assert stats["batcher"]["waves"] == 1  # second run never launched
        assert r1["result"]["right"] == r2["result"]["right"]
        assert r1["result"]["left"] == r2["result"]["left"]

    def test_admission_control_returns_429_past_the_budget(self):
        async def scenario():
            # long window: submissions stay in flight while we overfill
            service = AssemblyService(window_s=30.0, max_in_flight=2)
            port = await service.start()
            try:
                codes = []
                for seed in (1, 2, 3):
                    status, body = await request(
                        port, "POST", "/v1/jobs",
                        {"dat": make_dat(seed=seed), "k_schedule": [21]})
                    codes.append(status)
                _, stats = await request(port, "GET", "/v1/stats")
                return codes, stats
            finally:
                await service.stop()

        codes, stats = asyncio.run(scenario())
        assert codes == [202, 202, 429]
        assert stats["admission"]["rejected"] == 1

    def test_concurrent_burst_admission_is_exact(self):
        """32 simultaneous submits against a budget of 8: 8 in, 24 out."""
        async def scenario():
            # long window: admitted jobs stay in flight during the burst
            service = AssemblyService(window_s=30.0, max_in_flight=8)
            port = await service.start()
            try:
                statuses = await asyncio.gather(*[
                    request(port, "POST", "/v1/jobs",
                            {"dat": make_dat(n_contigs=1, seed=s),
                             "k_schedule": [21]})
                    for s in range(32)])
                _, stats = await request(port, "GET", "/v1/stats")
                return [status for status, _ in statuses], stats
            finally:
                await service.stop()

        codes, stats = asyncio.run(scenario())
        assert sorted(codes).count(202) == 8
        assert sorted(codes).count(429) == 24
        assert stats["admission"]["rejected"] == 24

    def test_draining_service_refuses_submits_with_503(self):
        from repro.resilience import FaultKind, FaultPlan, FaultSpec

        dat = make_dat(n_contigs=1, seed=9)

        async def scenario():
            # an injected stall keeps the wave in flight while we drain
            service = AssemblyService(window_s=0.01, fault_plan=FaultPlan(
                faults=(FaultSpec(FaultKind.WAVE_STALL, delay_s=0.5),)))
            port = await service.start()
            _, first = await request(port, "POST", "/v1/jobs",
                                     {"dat": dat, "k_schedule": [21]})
            stop_task = asyncio.get_running_loop().create_task(
                service.stop())
            await asyncio.sleep(0.1)  # drain has begun, wave still stalled
            refused = await request(port, "POST", "/v1/jobs",
                                    {"dat": dat, "k_schedule": [21]})
            drained = await stop_task
            return first, refused, drained, service

        first, refused, drained, service = asyncio.run(scenario())
        assert refused[0] == 503 and "draining" in refused[1]["error"]
        assert drained is True  # the in-flight job finished before exit
        assert service._jobs[first["job_id"]].status.value == "done"

    def test_bounded_drain_gives_up_on_a_stuck_wave(self):
        from repro.resilience import FaultKind, FaultPlan, FaultSpec

        async def scenario():
            service = AssemblyService(window_s=0.01, fault_plan=FaultPlan(
                faults=(FaultSpec(FaultKind.WAVE_STALL, delay_s=30.0),)))
            port = await service.start()
            _, body = await request(
                port, "POST", "/v1/jobs",
                {"dat": make_dat(n_contigs=1, seed=4), "k_schedule": [21]})
            await asyncio.sleep(0.05)  # the wave is now stalled
            return await service.stop(drain_timeout_s=0.2)

        assert asyncio.run(scenario()) is False

    def test_http_error_paths(self):
        async def scenario():
            service = AssemblyService(window_s=0.01)
            port = await service.start()
            try:
                bad_dat = await request(port, "POST", "/v1/jobs",
                                        {"dat": "garbage"})
                unknown = await request(port, "GET", "/v1/jobs/j999")
                no_route = await request(port, "GET", "/v1/nope")
                status, body = await request(
                    port, "POST", "/v1/jobs",
                    {"dat": make_dat(), "k_schedule": [21]})
                pending = await request(
                    port, "GET", f"/v1/jobs/{body['job_id']}/result")
                await poll_done(port, body["job_id"])
                return bad_dat, unknown, no_route, pending
            finally:
                await service.stop()

        bad_dat, unknown, no_route, pending = asyncio.run(scenario())
        assert bad_dat[0] == 400 and "dat" in bad_dat[1]["error"]
        assert unknown[0] == 404
        assert no_route[0] == 404
        # polling a result before the wave lands is a 409, not an error
        assert pending[0] in (409, 200)


class TestRunWave:
    def test_run_wave_scatters_payloads_per_job(self):
        configure_worker(cache_entries=16)
        wave = {
            "options": {"device": "A100", "backend": "auto",
                        "k_schedule": [21, 33],
                        "overflow_policy": "drop-contig"},
            "jobs": [{"job_id": f"j{i}", "dat": make_dat(seed=i),
                      "fingerprint": f"fp{i}"} for i in (1, 2)],
        }
        payloads = run_wave(wave)
        assert len(payloads) == 2
        assert all(p["ok"] for p in payloads)
        assert payloads[0]["result"]["right"] != payloads[1]["result"]["right"]

    def test_run_wave_rejects_empty_wave(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="at least one job"):
            run_wave({"options": {"device": "A100", "backend": "auto",
                                  "k_schedule": [21],
                                  "overflow_policy": "drop-contig"},
                      "jobs": []})
