"""Wire-protocol parsing and validation of the assembly service."""

import numpy as np
import pytest

from repro.genomics.io import dumps_dat
from repro.genomics.simulate import ErrorProfile, ScenarioSpec, simulate_batch
from repro.serve.protocol import (
    DEFAULT_K_SCHEDULE,
    JobOptions,
    ProtocolError,
    error_to_payload,
    job_fingerprint,
    parse_job_request,
)


def make_dat(n_contigs=2, seed=7) -> str:
    spec = ScenarioSpec(contig_length=120, flank_length=50, read_length=70,
                        depth=5, seed_window=40)
    errors = ErrorProfile(error_rate=0.0, lo_quality_fraction=0.0)
    rng = np.random.default_rng(seed)
    return dumps_dat([sc.contig for sc in
                      simulate_batch(n_contigs, spec, rng, errors)])


class TestParseJobRequest:
    def test_minimal_body_uses_defaults(self):
        spec = parse_job_request({"dat": make_dat()}, job_id="j1")
        assert spec.job_id == "j1"
        assert spec.n_contigs == 2
        assert spec.options == JobOptions()
        assert spec.options.k_schedule == DEFAULT_K_SCHEDULE
        assert len(spec.fingerprint) == 32

    def test_full_body_round_trips(self):
        body = {"dat": make_dat(), "k_schedule": [21, 33],
                "device": "MI250X", "backend": "hip",
                "overflow_policy": "grow-retry"}
        spec = parse_job_request(body, job_id="j2")
        assert spec.options.device == "MI250X"
        assert spec.options.backend == "hip"
        assert spec.options.k_schedule == (21, 33)
        assert spec.options.overflow_policy == "grow-retry"

    @pytest.mark.parametrize("body,match", [
        ("not a dict", "JSON object"),
        ({}, "non-empty 'dat'"),
        ({"dat": ""}, "non-empty 'dat'"),
        ({"dat": "garbage"}, "bad .dat payload"),
        ({"dat": "#locassm v1\n0\n"}, "no contigs"),
    ])
    def test_rejects_malformed_payloads(self, body, match):
        with pytest.raises(ProtocolError, match=match):
            parse_job_request(body, job_id="j1")

    def test_rejects_bad_execution_options(self):
        dat = make_dat()
        with pytest.raises(ProtocolError, match="k_schedule"):
            parse_job_request({"dat": dat, "k_schedule": [33, 21]},
                              job_id="j1")
        with pytest.raises(ProtocolError, match="k_schedule"):
            parse_job_request({"dat": dat, "k_schedule": "soon"},
                              job_id="j1")
        with pytest.raises(ProtocolError):
            parse_job_request({"dat": dat, "device": "TPU9000"},
                              job_id="j1")
        with pytest.raises(ProtocolError, match="overflow_policy"):
            parse_job_request({"dat": dat, "overflow_policy": "explode"},
                              job_id="j1")


class TestFingerprint:
    def test_depends_on_payload_and_options(self):
        dat_a, dat_b = make_dat(seed=1), make_dat(seed=2)
        opts = JobOptions()
        assert job_fingerprint(dat_a, opts) == job_fingerprint(dat_a, opts)
        assert job_fingerprint(dat_a, opts) != job_fingerprint(dat_b, opts)
        assert (job_fingerprint(dat_a, opts)
                != job_fingerprint(dat_a, JobOptions(k_schedule=(21,))))

    def test_coalescing_key_excludes_payload(self):
        a = parse_job_request({"dat": make_dat(seed=1)}, job_id="j1")
        b = parse_job_request({"dat": make_dat(seed=2)}, job_id="j2")
        assert a.options.coalescing_key == b.options.coalescing_key
        assert a.fingerprint != b.fingerprint


def test_error_payload_carries_overflow_attributes():
    from repro.errors import HashTableFullError

    err = HashTableFullError("table full", contig_id=3, k=21,
                             capacity=64, probes=64)
    payload = error_to_payload(err)
    assert payload["ok"] is False
    assert payload["error_type"] == "HashTableFullError"
    assert (payload["contig_id"], payload["k"],
            payload["capacity"], payload["probes"]) == (3, 21, 64, 64)
