"""Wave supervision units: bisection, retries, deadlines, breakers."""

import asyncio

import pytest

from repro.errors import BackendLaunchError, ReproError
from repro.serve import CircuitBreaker, LoadShedder, WaveSupervisor
from repro.serve.protocol import JobOptions, JobSpec

KEY = ("A100", "auto", (21,), "drop-contig")


def job(i, deadline=None):
    return JobSpec(job_id=f"j{i}", dat="", n_contigs=1,
                   options=JobOptions(k_schedule=(21,)),
                   fingerprint=f"fp{i}", deadline_s=deadline)


def ok_payloads(jobs):
    return [{"ok": True, "job": j.job_id} for j in jobs]


class TestSupervisor:
    def test_deadline_is_the_tightest_budget_aboard(self):
        sup = WaveSupervisor(None, default_deadline_s=60.0)
        assert sup.deadline_for([job(1), job(2)]) == 60.0
        assert sup.deadline_for([job(1, 5.0), job(2, 3.0), job(3)]) == 3.0

    def test_bisection_isolates_the_poison_job(self):
        calls = []

        async def execute(jobs):
            calls.append([j.job_id for j in jobs])
            if any(j.fingerprint == "fp2" for j in jobs):
                raise ValueError("poisoned wave")
            return ok_payloads(jobs)

        sup = WaveSupervisor(execute, retries=0, backoff_s=0.0)
        payloads = asyncio.run(sup.run(KEY, [job(i) for i in (1, 2, 3, 4)]))
        # co-tenants got exactly their own results, in submission order
        assert [p.get("job") for p in payloads] == ["j1", None, "j3", "j4"]
        failed = payloads[1]
        assert failed["ok"] is False and failed["supervised"] is True
        assert failed["error_type"] == "ValueError"
        assert calls[0] == ["j1", "j2", "j3", "j4"]  # full wave first
        assert sup.bisections == 2 and sup.jobs_failed == 1

    def test_transient_failures_retry_in_place(self):
        attempts = {"n": 0}

        async def execute(jobs):
            attempts["n"] += 1
            if attempts["n"] <= 2:
                raise BackendLaunchError("flaky launch")
            return ok_payloads(jobs)

        sup = WaveSupervisor(execute, retries=2, backoff_s=0.0)
        payloads = asyncio.run(sup.run(KEY, [job(1), job(2)]))
        assert all(p["ok"] for p in payloads)
        assert sup.transient_retries == 2 and sup.bisections == 0

    def test_exhausted_transient_budget_falls_back_to_bisection(self):
        async def execute(jobs):
            if any(j.fingerprint == "fp2" for j in jobs):
                raise BackendLaunchError("always down")
            return ok_payloads(jobs)

        sup = WaveSupervisor(execute, retries=0, backoff_s=0.0)
        payloads = asyncio.run(sup.run(KEY, [job(1), job(2)]))
        assert payloads[0]["ok"] and not payloads[1]["ok"]
        assert "always down" in payloads[1]["error"]

    def test_blown_deadline_times_out_and_bisects(self):
        async def execute(jobs):
            if any(j.fingerprint == "fp2" for j in jobs):
                await asyncio.sleep(0.5)
            return ok_payloads(jobs)

        sup = WaveSupervisor(execute, retries=0, backoff_s=0.0)
        payloads = asyncio.run(
            sup.run(KEY, [job(1), job(2, deadline=0.05), job(3)]))
        assert payloads[0]["ok"] and payloads[2]["ok"]
        assert not payloads[1]["ok"]
        assert "deadline" in payloads[1]["error"]
        assert sup.waves_timed_out >= 1

    def test_open_breaker_degrades_key_to_solo_waves(self):
        t = {"now": 0.0}
        breaker = CircuitBreaker(threshold=1, cooldown_s=100.0,
                                 clock=lambda: t["now"])
        breaker.record_failure(KEY)  # threshold 1: straight to open
        calls = []

        async def execute(jobs):
            calls.append([j.job_id for j in jobs])
            return ok_payloads(jobs)

        sup = WaveSupervisor(execute, breaker=breaker)
        payloads = asyncio.run(sup.run(KEY, [job(1), job(2), job(3)]))
        assert all(p["ok"] for p in payloads)
        assert calls == [["j1"], ["j2"], ["j3"]]  # never fused
        assert sup.degraded_waves == 1

    def test_rejects_nonpositive_deadline(self):
        with pytest.raises(ReproError, match="default_deadline_s"):
            WaveSupervisor(None, default_deadline_s=0.0)


class TestCircuitBreaker:
    def test_open_half_open_closed_cycle(self):
        t = {"now": 0.0}
        br = CircuitBreaker(threshold=2, cooldown_s=10.0,
                            clock=lambda: t["now"])
        assert br.allows_fusion(KEY) and br.state(KEY) == "closed"
        br.record_failure(KEY)
        assert br.state(KEY) == "closed"  # under threshold
        br.record_failure(KEY)
        assert br.state(KEY) == "open" and not br.allows_fusion(KEY)
        t["now"] = 10.0
        assert br.allows_fusion(KEY)  # cooldown elapsed: half-open probe
        assert br.state(KEY) == "half-open"
        br.record_failure(KEY)  # probe failed: reopen, cooldown restarts
        assert br.state(KEY) == "open"
        assert not br.allows_fusion(KEY)
        t["now"] = 20.0
        assert br.allows_fusion(KEY)
        br.record_success(KEY)  # probe succeeded
        assert br.state(KEY) == "closed" and br.allows_fusion(KEY)
        assert br.stats()["opened_total"] == 2

    def test_keys_are_independent(self):
        br = CircuitBreaker(threshold=1, cooldown_s=100.0, clock=lambda: 0.0)
        other = ("GPU", "auto", (33,), "drop-contig")
        br.record_failure(KEY)
        assert not br.allows_fusion(KEY)
        assert br.allows_fusion(other)
        assert br.open_keys() == 1

    def test_rejects_bad_threshold(self):
        with pytest.raises(ReproError, match="threshold"):
            CircuitBreaker(threshold=0)


class TestLoadShedder:
    def test_window_scale_shrinks_linearly_past_shed_start(self):
        shed = LoadShedder(max_in_flight=8)  # shed_start 0.5 -> depth 4
        assert shed.window_scale(0) == 1.0
        assert shed.window_scale(4) == 1.0
        assert shed.window_scale(6) == pytest.approx(0.5)
        assert shed.window_scale(8) == 0.0
        assert shed.window_scale(12) == 0.0  # clamped, never negative

    def test_admission_budget_halves_under_open_breakers(self):
        shed = LoadShedder(max_in_flight=8)
        assert shed.admission_budget(0) == 8
        assert shed.admission_budget(1) == 4
        assert LoadShedder(max_in_flight=1).admission_budget(3) == 1

    def test_rejects_bad_fractions(self):
        with pytest.raises(ReproError, match="shed_start"):
            LoadShedder(8, shed_start=1.0)
        with pytest.raises(ReproError, match="degraded_fraction"):
            LoadShedder(8, degraded_fraction=0.0)
