"""The crash-safe job journal: framing, torn tails, replay folding."""

import pytest

from repro.serve import JOURNAL_FORMAT, JobJournal, JournalError
from repro.serve.journal import frame_record, parse_frame


class TestFraming:
    def test_round_trip(self):
        record = {"seq": 3, "op": "submit", "job_id": "j3"}
        assert parse_frame(frame_record(record)) == record

    def test_rejects_crc_mismatch_and_garbage(self):
        line = frame_record({"seq": 1, "op": "finish", "job_id": "j1"})
        flipped = line[:12] + bytes([line[12] ^ 0xFF]) + line[13:]
        assert parse_frame(flipped) is None
        assert parse_frame(b"") is None
        assert parse_frame(b"short") is None
        assert parse_frame(b"zzzzzzzz {}") is None  # non-hex crc
        assert parse_frame(b"deadbeef-{}") is None  # missing separator

    def test_rejects_non_object_json(self):
        import json
        import zlib

        body = json.dumps([1, 2]).encode()
        crc = zlib.crc32(body) & 0xFFFFFFFF
        assert parse_frame(f"{crc:08x} ".encode() + body) is None


class TestAppend:
    def test_appends_are_sequenced_and_counted(self, tmp_path):
        journal = JobJournal(tmp_path / "j.wal", fsync=False)
        assert journal.append("submit", job_id="j1") == 2  # 1 was "open"
        assert journal.append("finish", job_id="j1") == 3
        assert journal.appends == 3
        journal.close()

    def test_unknown_op_rejected(self, tmp_path):
        journal = JobJournal(tmp_path / "j.wal", fsync=False)
        with pytest.raises(JournalError, match="unknown"):
            journal.append("frobnicate")
        journal.close()

    def test_append_after_close_rejected(self, tmp_path):
        journal = JobJournal(tmp_path / "j.wal", fsync=False)
        journal.close()
        with pytest.raises(JournalError, match="closed"):
            journal.append("submit", job_id="j1")


class TestReplay:
    def make_journal(self, path):
        journal = JobJournal(path, fsync=False)
        journal.append("submit", job_id="j1", dat="d1", fingerprint="f1")
        journal.append("submit", job_id="j2", dat="d2", fingerprint="f2")
        journal.append("dispatch", job_ids=["j1", "j2"])
        journal.append("finish", job_id="j1", status="done")
        return journal

    def test_missing_file_is_empty_state(self, tmp_path):
        state = JobJournal.replay(tmp_path / "absent.wal")
        assert state.jobs == {} and state.records == 0

    def test_folds_lifecycle_per_job(self, tmp_path):
        self.make_journal(tmp_path / "j.wal").close()
        state = JobJournal.replay(tmp_path / "j.wal")
        assert state.records == 5  # open + 2 submits + dispatch + finish
        assert state.torn == 0 and not state.clean_shutdown
        assert state.max_job_ordinal == 2
        assert [j["job_id"] for j in state.finished()] == ["j1"]
        assert state.jobs["j1"]["status"] == "done"
        pending = state.pending()
        assert [j["job_id"] for j in pending] == ["j2"]
        assert pending[0]["phase"] == "dispatch"
        assert pending[0]["dat"] == "d2"  # submit data survives the fold

    def test_torn_tail_dropped_without_losing_earlier_records(self, tmp_path):
        path = tmp_path / "j.wal"
        self.make_journal(path).close()
        with open(path, "ab") as fh:
            # a kill -9 mid-append: a frame missing its tail bytes
            fh.write(frame_record({"seq": 6, "op": "finish",
                                   "job_id": "j2"})[:15])
        state = JobJournal.replay(path)
        assert state.torn == 1
        assert state.records == 5
        # the torn finish never happened: j2 still re-dispatches
        assert [j["job_id"] for j in state.pending()] == ["j2"]

    def test_corrupt_middle_record_skipped(self, tmp_path):
        path = tmp_path / "j.wal"
        self.make_journal(path).close()
        lines = path.read_bytes().splitlines(keepends=True)
        lines[3] = b"00000000 " + lines[3][9:]  # wrong crc on the dispatch
        path.write_bytes(b"".join(lines))
        state = JobJournal.replay(path)
        assert state.torn == 1
        # the dispatch vanished; the finish after it still lands
        assert state.jobs["j1"]["phase"] == "finish"
        assert state.jobs["j2"]["phase"] == "submit"

    def test_clean_shutdown_flag(self, tmp_path):
        path = tmp_path / "j.wal"
        journal = self.make_journal(path)
        journal.append("shutdown", drained=True)
        journal.close()
        assert JobJournal.replay(path).clean_shutdown
        # records after a shutdown (a restarted service reusing the
        # file) clear the flag again
        journal = JobJournal(path, fsync=False)
        journal.append("submit", job_id="j3", dat="d3")
        journal.close()
        state = JobJournal.replay(path)
        assert not state.clean_shutdown
        assert state.max_job_ordinal == 3

    def test_open_records_carry_the_format(self, tmp_path):
        path = tmp_path / "j.wal"
        JobJournal(path, fsync=False).close()
        record = parse_frame(path.read_bytes().splitlines(keepends=True)[0])
        assert record["op"] == "open"
        assert record["format"] == JOURNAL_FORMAT
