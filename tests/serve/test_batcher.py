"""Coalescing batcher and admission-control unit tests (no HTTP)."""

import asyncio

import pytest

from repro.errors import ReproError
from repro.serve.batcher import CoalescingBatcher
from repro.serve.protocol import JobOptions, JobSpec
from repro.serve.queue import AdmissionControl


def spec(job_id: str, n_contigs: int = 2, **options) -> JobSpec:
    return JobSpec(job_id=job_id, dat="unused", n_contigs=n_contigs,
                   options=JobOptions(**options), fingerprint=job_id)


class WaveSink:
    def __init__(self) -> None:
        self.waves: list[tuple[tuple, list[str]]] = []

    async def __call__(self, key: tuple, jobs: list[JobSpec]) -> None:
        self.waves.append((key, [s.job_id for s in jobs]))


def run(coro):
    return asyncio.run(coro)


class TestWindow:
    def test_burst_within_window_fuses_into_one_wave(self):
        async def scenario():
            sink = WaveSink()
            batcher = CoalescingBatcher(sink, window_s=0.02)
            for i in range(5):
                await batcher.submit(spec(f"j{i}"))
            assert sink.waves == []  # window still open
            await asyncio.sleep(0.08)
            return sink.waves, batcher.stats()

        waves, stats = run(scenario())
        assert waves == [(JobOptions().coalescing_key,
                          ["j0", "j1", "j2", "j3", "j4"])]
        assert stats["waves"] == 1
        assert stats["jobs_waved"] == 5
        assert stats["biggest_wave"] == 5
        assert stats["pending_buckets"] == 0

    def test_zero_window_launches_each_job_solo(self):
        async def scenario():
            sink = WaveSink()
            batcher = CoalescingBatcher(sink, window_s=0)
            for i in range(3):
                await batcher.submit(spec(f"j{i}"))
            return sink.waves

        waves = run(scenario())
        assert [jobs for _, jobs in waves] == [["j0"], ["j1"], ["j2"]]

    def test_jobs_arriving_after_expiry_start_a_new_wave(self):
        async def scenario():
            sink = WaveSink()
            batcher = CoalescingBatcher(sink, window_s=0.01)
            await batcher.submit(spec("early"))
            await asyncio.sleep(0.06)
            await batcher.submit(spec("late"))
            await asyncio.sleep(0.06)
            return sink.waves

        waves = run(scenario())
        assert [jobs for _, jobs in waves] == [["early"], ["late"]]


class TestHighWater:
    def test_high_water_flushes_before_the_window(self):
        async def scenario():
            sink = WaveSink()
            # 2 warps per contig -> 4 warps per job; mark at 8 warps
            batcher = CoalescingBatcher(sink, window_s=30.0,
                                        max_wave_warps=8)
            await batcher.submit(spec("j0"))
            assert sink.waves == []
            await batcher.submit(spec("j1"))  # 8 warps: flush now
            await batcher.submit(spec("j2"))
            await batcher.flush_all()
            return sink.waves

        waves = run(scenario())
        assert [jobs for _, jobs in waves] == [["j0", "j1"], ["j2"]]

    def test_flush_all_drains_armed_buckets(self):
        async def scenario():
            sink = WaveSink()
            batcher = CoalescingBatcher(sink, window_s=30.0)
            await batcher.submit(spec("j0"))
            await batcher.submit(spec("j1", device="MI250X"))
            await batcher.flush_all()
            assert batcher.stats()["pending_buckets"] == 0
            return sink.waves

        waves = run(scenario())
        assert sorted(jobs for _, jobs in waves) == [["j0"], ["j1"]]


class TestCoalescingKeys:
    def test_different_configurations_never_share_a_wave(self):
        async def scenario():
            sink = WaveSink()
            batcher = CoalescingBatcher(sink, window_s=0.02)
            await batcher.submit(spec("a1"))
            await batcher.submit(spec("b1", device="MI250X"))
            await batcher.submit(spec("a2"))
            await batcher.submit(spec("c1", k_schedule=(21,)))
            await asyncio.sleep(0.08)
            return sink.waves

        waves = run(scenario())
        assert sorted(jobs for _, jobs in waves) == [
            ["a1", "a2"], ["b1"], ["c1"]]
        keys = [key for key, _ in waves]
        assert len(set(keys)) == 3

    def test_validates_configuration(self):
        sink = WaveSink()
        with pytest.raises(ReproError, match="window_s"):
            CoalescingBatcher(sink, window_s=-1)
        with pytest.raises(ReproError, match="max_wave_warps"):
            CoalescingBatcher(sink, max_wave_warps=0)


class TestAdmissionControl:
    def test_caps_in_flight_and_counts(self):
        gate = AdmissionControl(max_in_flight=2)
        assert gate.try_admit() and gate.try_admit()
        assert not gate.try_admit()
        assert gate.stats() == {"in_flight": 2, "max_in_flight": 2,
                                "admitted": 2, "rejected": 1}
        gate.release()
        assert gate.try_admit()

    def test_release_requires_a_matching_admit(self):
        gate = AdmissionControl(max_in_flight=1)
        with pytest.raises(ReproError, match="release"):
            gate.release()

    def test_validates_budget(self):
        with pytest.raises(ReproError, match="max_in_flight"):
            AdmissionControl(max_in_flight=0)
