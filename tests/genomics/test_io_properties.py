"""Property-based round-trip tests for the serialization formats."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.genomics import io as gio
from repro.genomics.contig import Contig
from repro.genomics.reads import Read, ReadSet

dna = st.text(alphabet="ACGT", min_size=1, max_size=60)
qual_char = st.characters(min_codepoint=33, max_codepoint=33 + 41)


@st.composite
def read_strategy(draw, name):
    seq = draw(dna)
    quals = draw(st.text(alphabet=qual_char, min_size=len(seq),
                         max_size=len(seq)))
    return Read.from_strings(name, seq, quals)


@st.composite
def contig_strategy(draw, idx):
    c = Contig.from_string(f"c{idx}", draw(dna))
    n = draw(st.integers(0, 4))
    c.reads = ReadSet([draw(read_strategy(f"c{idx}/r{j}")) for j in range(n)])
    return c


@st.composite
def contig_list(draw):
    n = draw(st.integers(0, 5))
    return [draw(contig_strategy(i)) for i in range(n)]


class TestDatRoundtripProperty:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(contig_list())
    def test_dat_roundtrip(self, tmp_path, contigs):
        p = tmp_path / "x.dat"
        gio.write_dat(contigs, p)
        back = gio.read_dat(p)
        assert len(back) == len(contigs)
        for a, b in zip(contigs, back):
            assert a.sequence == b.sequence
            assert [r.sequence for r in a.reads] == [r.sequence for r in b.reads]
            for ra, rb in zip(a.reads, b.reads):
                np.testing.assert_array_equal(ra.quals, rb.quals)


class TestFastqRoundtripProperty:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(st.lists(read_strategy("r"), max_size=6))
    def test_fastq_roundtrip(self, tmp_path, reads):
        rs = ReadSet(list(reads))
        p = tmp_path / "x.fq"
        gio.write_fastq(rs, p)
        back = gio.read_fastq(p)
        assert len(back) == len(rs)
        for a, b in zip(rs, back):
            assert a.sequence == b.sequence
            assert a.quality_string == b.quality_string


class TestFastaRoundtripProperty:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(st.lists(st.tuples(st.text(alphabet="abc_0", min_size=1, max_size=8),
                              dna), max_size=5),
           st.integers(1, 100))
    def test_fasta_roundtrip_any_wrap(self, tmp_path, recs, width):
        # names must be unique per file for a meaningful comparison
        records = [(f"{i}_{name}", seq) for i, (name, seq) in enumerate(recs)]
        p = tmp_path / "x.fa"
        gio.write_fasta(records, p, width=width)
        assert gio.read_fasta(p) == records
