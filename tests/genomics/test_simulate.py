"""Tests for the genome/read/scenario simulators."""

import numpy as np
import pytest

from repro.errors import SequenceError
from repro.genomics.dna import decode
from repro.genomics.simulate import (
    PERFECT_READS,
    ContigScenario,
    ErrorProfile,
    ScenarioSpec,
    sequence_read,
    simulate_batch,
    simulate_contig_scenario,
    simulate_genome,
)


class TestErrorProfile:
    def test_defaults_valid(self):
        ErrorProfile()

    def test_rejects_bad_error_rate(self):
        with pytest.raises(SequenceError):
            ErrorProfile(error_rate=1.5)

    def test_rejects_inverted_quality(self):
        with pytest.raises(SequenceError):
            ErrorProfile(hi_quality=10, lo_quality=20)


class TestSequenceRead:
    def test_perfect_read_matches_genome(self):
        rng = np.random.default_rng(0)
        g = simulate_genome(300, rng)
        r = sequence_read(g, 50, 100, rng, PERFECT_READS)
        np.testing.assert_array_equal(r.codes, g[50:150])

    def test_out_of_bounds_rejected(self):
        rng = np.random.default_rng(0)
        g = simulate_genome(100, rng)
        with pytest.raises(SequenceError):
            sequence_read(g, 50, 100, rng)

    def test_error_rate_applied(self):
        rng = np.random.default_rng(1)
        g = simulate_genome(20000, rng)
        r = sequence_read(g, 0, 20000, rng, ErrorProfile(error_rate=0.05))
        mismatches = int(np.count_nonzero(r.codes != g))
        # expected ~ 0.05..0.5 of 5% given lo-quality boost; just sanity bounds
        assert 400 < mismatches < 4000

    def test_errors_prefer_low_quality(self):
        rng = np.random.default_rng(2)
        g = simulate_genome(50000, rng)
        prof = ErrorProfile(error_rate=0.01, lo_quality_fraction=0.2)
        r = sequence_read(g, 0, 50000, rng, prof)
        err = r.codes != g
        lo = r.quals == prof.lo_quality
        err_rate_lo = err[lo].mean()
        err_rate_hi = err[~lo].mean()
        assert err_rate_lo > 3 * err_rate_hi


class TestScenario:
    def test_contig_is_region_interior(self):
        rng = np.random.default_rng(3)
        spec = ScenarioSpec(contig_length=200, flank_length=60, read_length=80, depth=4)
        sc = simulate_contig_scenario(spec, rng, PERFECT_READS)
        assert isinstance(sc, ContigScenario)
        assert len(sc.contig) == 200
        assert len(sc.true_left_flank) == 60
        assert len(sc.true_right_flank) == 60
        region = decode(sc.region)
        assert region == sc.true_left_flank + sc.contig.sequence + sc.true_right_flank

    def test_reads_assigned(self):
        rng = np.random.default_rng(4)
        spec = ScenarioSpec(contig_length=300, flank_length=80, read_length=100, depth=6)
        sc = simulate_contig_scenario(spec, rng)
        assert sc.contig.depth >= 2

    def test_read_too_long_rejected(self):
        rng = np.random.default_rng(5)
        spec = ScenarioSpec(contig_length=10, flank_length=5, read_length=100)
        with pytest.raises(SequenceError):
            simulate_contig_scenario(spec, rng)

    def test_coverage_near_target_depth(self):
        rng = np.random.default_rng(6)
        spec = ScenarioSpec(contig_length=400, flank_length=100, read_length=120,
                            depth=10, seed_window=80)
        sc = simulate_contig_scenario(spec, rng, PERFECT_READS)
        # Coverage at the right contig-end junction should be near depth.
        junction = spec.flank_length + spec.contig_length
        cov = 0
        offset_index = 0
        # reconstruct coverage by matching perfect reads back to the region
        region = sc.region
        for r in sc.contig.reads:
            # find the read's position (perfect reads are exact slices)
            for s in range(len(region) - len(r) + 1):
                if np.array_equal(region[s : s + len(r)], r.codes):
                    if s <= junction - 1 < s + len(r):
                        cov += 1
                    break
            offset_index += 1
        assert cov >= spec.depth * 0.4

    def test_batch(self):
        rng = np.random.default_rng(7)
        spec = ScenarioSpec(contig_length=120, flank_length=40, read_length=60, depth=3)
        batch = simulate_batch(5, spec, rng)
        assert len(batch) == 5
        assert len({sc.contig.name for sc in batch}) == 5

    def test_deterministic(self):
        spec = ScenarioSpec(contig_length=120, flank_length=40, read_length=60, depth=3)
        a = simulate_contig_scenario(spec, np.random.default_rng(8))
        b = simulate_contig_scenario(spec, np.random.default_rng(8))
        assert a.contig.sequence == b.contig.sequence
        assert a.true_right_flank == b.true_right_flank
