"""Unit + property tests for 2-bit DNA encoding."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SequenceError
from repro.genomics import dna

dna_strings = st.text(alphabet="ACGT", min_size=0, max_size=200)


class TestEncodeDecode:
    def test_encode_basic(self):
        np.testing.assert_array_equal(dna.encode("ACGT"), [0, 1, 2, 3])

    def test_encode_lowercase(self):
        np.testing.assert_array_equal(dna.encode("acgt"), [0, 1, 2, 3])

    def test_encode_empty(self):
        assert dna.encode("").size == 0

    def test_encode_bytes(self):
        np.testing.assert_array_equal(dna.encode(b"TGCA"), [3, 2, 1, 0])

    def test_encode_passthrough_array(self):
        arr = np.array([0, 3, 1], dtype=np.uint8)
        assert dna.encode(arr) is arr

    def test_encode_rejects_ambiguity_codes(self):
        with pytest.raises(SequenceError, match="invalid DNA base 'N'"):
            dna.encode("ACGNT")

    def test_encode_rejects_unicode(self):
        with pytest.raises(SequenceError):
            dna.encode("ACGé")

    def test_encode_rejects_bad_dtype(self):
        with pytest.raises(SequenceError, match="uint8"):
            dna.encode(np.array([0, 1], dtype=np.int64))

    def test_encode_rejects_code_out_of_range(self):
        with pytest.raises(SequenceError):
            dna.encode(np.array([0, 7], dtype=np.uint8))

    def test_decode_basic(self):
        assert dna.decode(np.array([3, 3, 0, 2], dtype=np.uint8)) == "TTAG"

    def test_decode_rejects_out_of_range(self):
        with pytest.raises(SequenceError):
            dna.decode(np.array([4], dtype=np.uint8))

    @given(dna_strings)
    def test_roundtrip(self, s):
        assert dna.decode(dna.encode(s)) == s


class TestValidation:
    def test_valid(self):
        assert dna.is_valid_sequence("GATTACA")

    def test_invalid(self):
        assert not dna.is_valid_sequence("GATTACA!")

    def test_empty_is_valid(self):
        assert dna.is_valid_sequence("")


class TestComplement:
    def test_complement(self):
        np.testing.assert_array_equal(
            dna.complement(dna.encode("ACGT")), dna.encode("TGCA")
        )

    def test_reverse_complement_string(self):
        assert dna.reverse_complement("AACG") == "CGTT"

    def test_reverse_complement_array(self):
        out = dna.reverse_complement(dna.encode("AACG"))
        assert isinstance(out, np.ndarray)
        assert dna.decode(out) == "CGTT"

    @given(dna_strings)
    def test_reverse_complement_involution(self, s):
        assert dna.reverse_complement(dna.reverse_complement(s)) == s

    @given(dna_strings)
    def test_complement_preserves_length(self, s):
        assert len(dna.reverse_complement(s)) == len(s)


class TestRandomSequence:
    def test_length_and_range(self):
        rng = np.random.default_rng(0)
        seq = dna.random_sequence(1000, rng)
        assert len(seq) == 1000
        assert seq.dtype == np.uint8
        assert set(np.unique(seq)) <= {0, 1, 2, 3}

    def test_deterministic_with_seed(self):
        a = dna.random_sequence(64, np.random.default_rng(7))
        b = dna.random_sequence(64, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_negative_length_rejected(self):
        with pytest.raises(SequenceError):
            dna.random_sequence(-1, np.random.default_rng(0))

    def test_uses_all_bases(self):
        seq = dna.random_sequence(4000, np.random.default_rng(1))
        assert set(np.unique(seq)) == {0, 1, 2, 3}


class TestHamming:
    def test_equal(self):
        assert dna.hamming_distance(dna.encode("ACGT"), dna.encode("ACGT")) == 0

    def test_differs(self):
        assert dna.hamming_distance(dna.encode("ACGT"), dna.encode("ACGA")) == 1

    def test_length_mismatch(self):
        with pytest.raises(SequenceError):
            dna.hamming_distance(dna.encode("AC"), dna.encode("ACG"))


class TestDecodeMatrix:
    def test_rows_match_scalar_decode(self):
        rows = ["ACGT", "GG", "", "TTTACG"]
        width = max(len(r) for r in rows)
        codes = np.zeros((len(rows), width), dtype=np.uint8)
        lengths = np.array([len(r) for r in rows])
        for i, r in enumerate(rows):
            codes[i, : len(r)] = dna.encode(r)
        assert dna.decode_matrix(codes, lengths) == rows

    def test_padding_ignored(self):
        codes = np.full((2, 5), 3, dtype=np.uint8)
        codes[0, :2] = dna.encode("AC")
        out = dna.decode_matrix(codes, np.array([2, 0]))
        assert out == ["AC", ""]

    def test_rejects_bad_lengths(self):
        codes = np.zeros((2, 4), dtype=np.uint8)
        with pytest.raises(SequenceError):
            dna.decode_matrix(codes, np.array([5, 0]))
        with pytest.raises(SequenceError):
            dna.decode_matrix(codes, np.array([-1, 0]))
        with pytest.raises(SequenceError):
            dna.decode_matrix(codes, np.array([1, 2, 3]))

    def test_rejects_non_matrix(self):
        with pytest.raises(SequenceError):
            dna.decode_matrix(np.zeros(4, dtype=np.uint8), np.array([4]))


class TestReverseComplementMatrix:
    @given(st.lists(dna_strings, min_size=1, max_size=8))
    def test_rows_match_scalar(self, rows):
        width = max([len(r) for r in rows] + [1])
        codes = np.zeros((len(rows), width), dtype=np.uint8)
        lengths = np.array([len(r) for r in rows])
        for i, r in enumerate(rows):
            codes[i, : len(r)] = dna.encode(r)
        rc = dna.reverse_complement_matrix(codes, lengths)
        assert rc.dtype == np.uint8 and rc.shape == codes.shape
        for i, r in enumerate(rows):
            expect = dna.reverse_complement(r)
            assert dna.decode(rc[i, : len(r)]) == expect
            assert not rc[i, len(r):].any()  # padding stays zeroed

    def test_involution(self):
        rng = np.random.default_rng(5)
        codes = rng.integers(0, 4, size=(6, 30), dtype=np.uint8)
        lengths = rng.integers(0, 31, size=6)
        cleared = codes.copy()
        for i in range(6):
            cleared[i, int(lengths[i]):] = 0
        twice = dna.reverse_complement_matrix(
            dna.reverse_complement_matrix(codes, lengths), lengths)
        np.testing.assert_array_equal(twice, cleared)

    def test_zero_width(self):
        out = dna.reverse_complement_matrix(
            np.zeros((3, 0), dtype=np.uint8), np.zeros(3, dtype=np.int64))
        assert out.shape == (3, 0)

    def test_rejects_bad_lengths(self):
        codes = np.zeros((2, 4), dtype=np.uint8)
        with pytest.raises(SequenceError):
            dna.reverse_complement_matrix(codes, np.array([5, 0]))
        with pytest.raises(SequenceError):
            dna.reverse_complement_matrix(codes, np.array([1]))
