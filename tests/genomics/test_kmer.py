"""Unit + property tests for k-mer extraction, packing and fingerprints."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KmerError
from repro.genomics import kmer
from repro.genomics.dna import encode

dna_strings = st.text(alphabet="ACGT", min_size=1, max_size=120)


class TestIterKmers:
    def test_basic(self):
        assert kmer.kmers_of("AGCCC", 4) == ["AGCC", "GCCC"]

    def test_k_equals_length(self):
        assert kmer.kmers_of("ACGT", 4) == ["ACGT"]

    def test_figure1_example(self):
        # Figure 1 of the paper: agccctcccg with k=4.
        got = kmer.kmers_of("AGCCCTCCCG", 4)
        assert got == ["AGCC", "GCCC", "CCCT", "CCTC", "CTCC", "TCCC", "CCCG"]

    def test_k_too_large(self):
        with pytest.raises(KmerError):
            kmer.kmers_of("ACG", 4)

    def test_k_nonpositive(self):
        with pytest.raises(KmerError):
            kmer.kmers_of("ACG", 0)

    @given(dna_strings, st.integers(1, 10))
    def test_count_matches_formula(self, s, k):
        if k <= len(s):
            assert len(kmer.kmers_of(s, k)) == len(s) - k + 1


class TestKmerMatrix:
    def test_is_view(self):
        codes = encode("ACGTACGT")
        mat = kmer.kmer_matrix(codes, 4)
        assert mat.base is not None  # no copy
        assert mat.shape == (5, 4)

    def test_rows_match_iteration(self):
        codes = encode("GATTACAGATTACA")
        mat = kmer.kmer_matrix(codes, 5)
        for i, m in enumerate(kmer.iter_kmers(codes, 5)):
            np.testing.assert_array_equal(mat[i], encode(m))


class TestPacking:
    def test_pack_known(self):
        # A=0,C=1,G=2,T=3: ACGT -> 0b00011011 = 27
        assert kmer.pack_kmer("ACGT") == 27

    def test_pack_unpack_roundtrip_long(self):
        s = "ACGT" * 20 + "GTC"  # k=83 > 64-bit capacity
        assert kmer.unpack_kmer(kmer.pack_kmer(s), len(s)) == s

    def test_pack_wrong_k(self):
        with pytest.raises(KmerError):
            kmer.pack_kmer("ACG", k=4)

    def test_unpack_rejects_negative(self):
        with pytest.raises(KmerError):
            kmer.unpack_kmer(-1, 3)

    def test_unpack_rejects_overflow(self):
        with pytest.raises(KmerError):
            kmer.unpack_kmer(1 << 10, 2)

    @given(dna_strings)
    def test_roundtrip_property(self, s):
        assert kmer.unpack_kmer(kmer.pack_kmer(s), len(s)) == s

    @given(dna_strings, dna_strings)
    def test_packing_injective(self, a, b):
        if len(a) == len(b) and a != b:
            assert kmer.pack_kmer(a) != kmer.pack_kmer(b)


class TestCanonical:
    def test_canonical_palindrome(self):
        assert kmer.canonical_kmer("ACGT") == "ACGT"  # own revcomp

    def test_canonical_picks_smaller(self):
        assert kmer.canonical_kmer("TTTT") == "AAAA"

    @given(dna_strings)
    def test_canonical_idempotent(self, s):
        c = kmer.canonical_kmer(s)
        assert kmer.canonical_kmer(c) == c


class TestCountKmers:
    def test_multiplicity(self):
        counts = kmer.count_kmers("AAAAA", 2)
        assert counts == {"AA": 4}

    def test_canonical_merges(self):
        counts = kmer.count_kmers("AATT", 2, canonical=True)
        # AA, AT, TT -> canonical AA, AT, AA
        assert counts["AA"] == 2 and counts["AT"] == 1


class TestFingerprints:
    def test_matches_scalar(self):
        codes = encode("GATTACAGATTACACCGT")
        fps = kmer.kmer_fingerprints(codes, 7)
        for i, m in enumerate(kmer.iter_kmers(codes, 7)):
            assert int(fps[i]) == kmer.fingerprint_of(m)

    def test_equal_kmers_equal_fingerprints(self):
        codes = encode("ACGACGACG")
        fps = kmer.kmer_fingerprints(codes, 3)
        assert fps[0] == fps[3] == fps[6]  # ACG at offsets 0,3,6

    @settings(max_examples=25)
    @given(st.integers(0, 2**32 - 1))
    def test_no_collisions_random_batch(self, seed):
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, 4, size=3000, dtype=np.uint8)
        fps = kmer.kmer_fingerprints(codes, 21)
        mat = kmer.kmer_matrix(codes, 21)
        # distinct k-mers must have distinct fingerprints
        _, first_idx = np.unique(fps, return_index=True)
        uniq_kmers = {mat[i].tobytes() for i in range(mat.shape[0])}
        assert len(first_idx) == len(uniq_kmers)

    def test_dtype_uint64(self):
        fps = kmer.kmer_fingerprints(encode("ACGTACGT"), 4)
        assert fps.dtype == np.uint64


class TestRollingFingerprints:
    """The O(n) prefix-sum evaluation must be bit-identical to the
    windowed polynomial it replaced in the batch preparer."""

    @settings(max_examples=25)
    @given(st.integers(0, 2**32 - 1), st.sampled_from([1, 2, 7, 21, 33, 77]))
    def test_matches_fingerprint_matrix(self, seed, k):
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, 4, size=max(k, 120), dtype=np.uint8)
        rolled = kmer.rolling_fingerprints(codes, k)
        windowed = kmer.fingerprint_matrix(kmer.kmer_matrix(codes, k))
        np.testing.assert_array_equal(rolled, windowed)
        assert rolled.dtype == np.uint64

    def test_prefix_reusable_across_k(self):
        rng = np.random.default_rng(9)
        codes = rng.integers(0, 4, size=200, dtype=np.uint8)
        prefix = kmer.fingerprint_prefix(codes)
        assert prefix.shape == (codes.size + 1,)
        for k in (21, 33, 55):
            np.testing.assert_array_equal(
                kmer.rolling_fingerprints(codes, k, prefix=prefix),
                kmer.rolling_fingerprints(codes, k))

    def test_prefix_size_validated(self):
        codes = np.zeros(10, dtype=np.uint8)
        with pytest.raises(KmerError):
            kmer.rolling_fingerprints(codes, 3, prefix=np.zeros(5, np.uint64))

    def test_k_validation(self):
        codes = np.zeros(5, dtype=np.uint8)
        with pytest.raises(KmerError):
            kmer.rolling_fingerprints(codes, 0)
        with pytest.raises(KmerError):
            kmer.rolling_fingerprints(codes, 6)


class TestShiftFingerprints:
    """One-base window advance must match re-evaluating the window."""

    @settings(max_examples=25)
    @given(st.integers(0, 2**32 - 1), st.sampled_from([2, 5, 21, 33]))
    def test_matches_reevaluation(self, seed, k):
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, 4, size=k + 40, dtype=np.uint8)
        fps = kmer.kmer_fingerprints(codes, k)
        shifted = kmer.shift_fingerprints(
            fps[:-1], codes[: fps.size - 1], codes[k:], k)
        np.testing.assert_array_equal(shifted, fps[1:])

    def test_k_equals_one(self):
        codes = np.array([0, 1, 2, 3], dtype=np.uint8)
        fps = kmer.kmer_fingerprints(codes, 1)
        shifted = kmer.shift_fingerprints(fps[:-1], codes[:-1], codes[1:], 1)
        np.testing.assert_array_equal(shifted, fps[1:])
