"""Tests for dataset / FASTA / FASTQ serialization."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.genomics import io as gio
from repro.genomics.contig import Contig
from repro.genomics.reads import Read, ReadSet
from repro.genomics.simulate import ScenarioSpec, simulate_batch


def _sample_contigs():
    rng = np.random.default_rng(11)
    spec = ScenarioSpec(contig_length=100, flank_length=30, read_length=50, depth=3)
    return [sc.contig for sc in simulate_batch(3, spec, rng)]


class TestDat:
    def test_roundtrip(self, tmp_path):
        contigs = _sample_contigs()
        p = tmp_path / "x.dat"
        gio.write_dat(contigs, p)
        back = gio.read_dat(p)
        assert len(back) == len(contigs)
        for a, b in zip(contigs, back):
            assert a.name == b.name
            assert a.sequence == b.sequence
            assert len(a.reads) == len(b.reads)
            for ra, rb in zip(a.reads, b.reads):
                assert ra.sequence == rb.sequence
                np.testing.assert_array_equal(ra.quals, rb.quals)

    def test_empty_roundtrip(self, tmp_path):
        p = tmp_path / "empty.dat"
        gio.write_dat([], p)
        assert gio.read_dat(p) == []

    def test_missing_magic(self, tmp_path):
        p = tmp_path / "bad.dat"
        p.write_text("nope\n0\n")
        with pytest.raises(DatasetError, match="header"):
            gio.read_dat(p)

    def test_truncated_reads(self, tmp_path):
        p = tmp_path / "trunc.dat"
        p.write_text("#locassm v1\n1\n>c0 2\nACGT\nACG\tIII\n")
        with pytest.raises(DatasetError, match="truncated"):
            gio.read_dat(p)

    def test_read_qual_mismatch(self, tmp_path):
        p = tmp_path / "mm.dat"
        p.write_text("#locassm v1\n1\n>c0 1\nACGT\nACG\tIIII\n")
        with pytest.raises(DatasetError, match="mismatch"):
            gio.read_dat(p)

    def test_bad_count(self, tmp_path):
        p = tmp_path / "cnt.dat"
        p.write_text("#locassm v1\nxyz\n")
        with pytest.raises(DatasetError):
            gio.read_dat(p)


class TestFasta:
    def test_roundtrip_with_wrapping(self, tmp_path):
        recs = [("a", "ACGT" * 50), ("b desc", "TT")]
        p = tmp_path / "x.fa"
        gio.write_fasta(recs, p, width=60)
        assert gio.read_fasta(p) == recs

    def test_sequence_before_header(self, tmp_path):
        p = tmp_path / "bad.fa"
        p.write_text("ACGT\n>late\nACGT\n")
        with pytest.raises(DatasetError):
            gio.read_fasta(p)


class TestFastq:
    def test_roundtrip(self, tmp_path):
        rs = ReadSet([Read.from_strings("r1", "ACGT", "II!5"),
                      Read.from_strings("r2", "GG", "##")])
        p = tmp_path / "x.fq"
        gio.write_fastq(rs, p)
        back = gio.read_fastq(p)
        assert [r.name for r in back] == ["r1", "r2"]
        assert back[0].quality_string == "II!5"

    def test_bad_record_count(self, tmp_path):
        p = tmp_path / "bad.fq"
        p.write_text("@r\nACGT\n+\n")
        with pytest.raises(DatasetError):
            gio.read_fastq(p)

    def test_malformed_record(self, tmp_path):
        p = tmp_path / "bad2.fq"
        p.write_text("r\nACGT\n+\nIIII\n")
        with pytest.raises(DatasetError):
            gio.read_fastq(p)


def test_dat_contig_roundtrip_via_contig_cls(tmp_path):
    c = Contig.from_string("solo", "ACGTACGT")
    p = tmp_path / "solo.dat"
    gio.write_dat([c], p)
    assert gio.read_dat(p)[0].sequence == "ACGTACGT"
