"""Tests for reads and read sets."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SequenceError
from repro.genomics.dna import encode
from repro.genomics.reads import (
    DEFAULT_QUAL_THRESHOLD,
    MAX_PHRED,
    Read,
    ReadSet,
)


def _read(seq="ACGTACGT", quals=None, name="r"):
    return Read.from_strings(name, seq, quals)


class TestRead:
    def test_from_strings_default_quals(self):
        r = _read()
        assert len(r) == 8
        assert (r.quals == MAX_PHRED).all()

    def test_sequence_roundtrip(self):
        assert _read("GATTACA").sequence == "GATTACA"

    def test_quality_string_roundtrip(self):
        r = _read("ACGT", "!I5+")
        assert r.quality_string == "!I5+"

    def test_fastq_quality_decoding(self):
        r = _read("ACGT", "IIII")  # 'I' = phred 40
        assert (r.quals == 40).all()

    def test_rejects_length_mismatch(self):
        with pytest.raises(SequenceError, match="quals"):
            Read(name="x", codes=encode("ACGT"), quals=np.zeros(3, dtype=np.uint8))

    def test_rejects_bad_quality_char(self):
        with pytest.raises(SequenceError):
            _read("ACGT", "II I")  # space < '!'

    def test_high_quality_mask(self):
        r = Read(name="x", codes=encode("ACGT"),
                 quals=np.array([10, 20, 30, 19], dtype=np.uint8))
        np.testing.assert_array_equal(
            r.high_quality_mask(DEFAULT_QUAL_THRESHOLD), [False, True, True, False]
        )

    @given(st.text(alphabet="ACGT", min_size=1, max_size=50))
    def test_roundtrip_property(self, seq):
        assert _read(seq).sequence == seq


class TestReadSet:
    def test_empty(self):
        rs = ReadSet()
        assert len(rs) == 0
        assert rs.total_bases == 0
        assert rs.mean_length == 0.0

    def test_append_and_iterate(self):
        rs = ReadSet()
        rs.append(_read("ACGT"))
        rs.append(_read("AC"))
        assert len(rs) == 2
        assert rs.total_bases == 6
        assert rs.mean_length == 3.0
        assert [len(r) for r in rs] == [4, 2]
        assert len(rs[1]) == 2

    def test_flatten_layout(self):
        rs = ReadSet([_read("ACGT", "IIII"), _read("GG", "!!")])
        codes, quals, offsets = rs.flatten()
        np.testing.assert_array_equal(offsets, [0, 4, 6])
        np.testing.assert_array_equal(codes[offsets[1]:offsets[2]], encode("GG"))
        assert quals[4] == 0  # '!' -> phred 0

    def test_flatten_empty(self):
        codes, quals, offsets = ReadSet().flatten()
        assert codes.size == 0 and quals.size == 0
        np.testing.assert_array_equal(offsets, [0])

    def test_kmer_count(self):
        rs = ReadSet([_read("ACGTA"), _read("AC")])
        assert rs.kmer_count(3) == 3  # 3 from the 5-mer, 0 from the 2-mer

    @given(st.lists(st.text(alphabet="ACGT", min_size=1, max_size=30), max_size=10))
    def test_flatten_total_matches(self, seqs):
        rs = ReadSet([_read(s, name=f"r{i}") for i, s in enumerate(seqs)])
        codes, _, offsets = rs.flatten()
        assert codes.size == rs.total_bases == offsets[-1]
