"""Tests for contigs and extension records."""

import pytest

from repro.errors import SequenceError
from repro.genomics.contig import Contig, ContigExtension, End
from repro.genomics.dna import decode
from repro.genomics.reads import Read, ReadSet


def _contig(seq="ACGTACGTACGT", name="c0"):
    return Contig.from_string(name, seq)


class TestContig:
    def test_basic(self):
        c = _contig()
        assert len(c) == 12
        assert c.sequence == "ACGTACGTACGT"
        assert c.depth == 0

    def test_empty_rejected(self):
        with pytest.raises(SequenceError):
            _contig("")

    def test_depth_counts_reads(self):
        c = _contig()
        c.reads = ReadSet([Read.from_strings("r", "ACGT")])
        assert c.depth == 1

    def test_end_kmer_right(self):
        assert decode(_contig("AACCGGTT").end_kmer(4, End.RIGHT)) == "GGTT"

    def test_end_kmer_left(self):
        assert decode(_contig("AACCGGTT").end_kmer(4, End.LEFT)) == "AACC"

    def test_end_kmer_too_long(self):
        with pytest.raises(SequenceError):
            _contig("ACG").end_kmer(4, End.RIGHT)

    def test_extended_sequence(self):
        c = _contig("CCCC")
        c.left_extension = ContigExtension(End.LEFT, "AA", "end", 4)
        c.right_extension = ContigExtension(End.RIGHT, "GG", "fork", 4)
        assert c.extended_sequence() == "AACCCCGG"
        assert c.total_extension_length() == 4

    def test_extension_len(self):
        ext = ContigExtension(End.RIGHT, "ACG", "end", 21, steps=5)
        assert len(ext) == 3
        assert ext.steps == 5

    def test_no_extension(self):
        c = _contig("CCCC")
        assert c.extended_sequence() == "CCCC"
        assert c.total_extension_length() == 0
