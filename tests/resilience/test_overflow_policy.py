"""Overflow semantics: enriched errors, drop-contig isolation, grow-retry
byte-identity (the property the GROW_RETRY design argument claims)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import HashTableFullError, KernelError
from repro.kernels import CudaLocalAssemblyKernel, ScalarReferenceBackend
from repro.resilience import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    OverflowPolicy,
)
from repro.simt.device import A100

from .conftest import K

pytestmark = pytest.mark.resilience


def _pressured(contigs, policy, warps, capacity, **kw):
    inj = FaultInjector(FaultPlan(faults=(
        FaultSpec(FaultKind.TABLE_PRESSURE, launch=0, warps=tuple(warps),
                  capacity=capacity),
    )))
    kern = CudaLocalAssemblyKernel(A100, overflow_policy=policy,
                                   fault_injector=inj, **kw)
    return kern.run(contigs, K)


class TestPolicyParsing:
    def test_spellings(self):
        assert OverflowPolicy.parse("raise") is OverflowPolicy.RAISE
        assert OverflowPolicy.parse("drop-contig") is OverflowPolicy.DROP_CONTIG
        assert OverflowPolicy.parse(OverflowPolicy.GROW_RETRY) \
            is OverflowPolicy.GROW_RETRY

    def test_unknown_rejected(self):
        with pytest.raises(KernelError, match="unknown overflow policy"):
            OverflowPolicy.parse("explode")

    def test_kernel_validates_grow_knobs(self):
        with pytest.raises(KernelError):
            CudaLocalAssemblyKernel(A100, grow_factor=1.0)
        with pytest.raises(KernelError):
            CudaLocalAssemblyKernel(A100, max_grow_attempts=0)


class TestRaisePolicy:
    def test_enriched_error_context(self, contigs):
        with pytest.raises(HashTableFullError) as exc_info:
            _pressured(contigs, "raise", warps=(0,), capacity=4)
        err = exc_info.value
        assert err.contig_id is not None
        assert err.k == K
        assert err.capacity == 4
        assert err.probes is not None and err.probes >= err.capacity
        msg = str(err)
        assert f"k={K}" in msg and "capacity=4" in msg


class TestDropContig:
    def test_only_pressured_contigs_affected(self, contigs, clean_run):
        res = _pressured(contigs, "drop-contig", warps=(0, 1), capacity=4)
        assert res.degraded and not res.retried
        assert res.profile.contigs_dropped == len(res.degraded)
        degraded = set(res.degraded)
        for i in range(len(contigs)):
            if i in degraded:
                assert res.right[i][0] == "" or res.left[i][0] == ""
            else:
                assert res.right[i] == clean_run.right[i]
                assert res.left[i] == clean_run.left[i]


class TestGrowRetry:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(warps=st.sets(st.integers(min_value=0, max_value=7),
                         min_size=1, max_size=3),
           capacity=st.integers(min_value=2, max_value=48))
    def test_byte_identical_to_adequately_sized(self, contigs, clean_run,
                                                warps, capacity):
        res = _pressured(contigs, "grow-retry", warps=sorted(warps),
                         capacity=capacity, max_grow_attempts=12)
        assert not res.degraded
        assert res.right == clean_run.right
        assert res.left == clean_run.left

    def test_retried_contigs_recorded(self, contigs):
        res = _pressured(contigs, "grow-retry", warps=(0,), capacity=4,
                         max_grow_attempts=12)
        assert res.retried
        assert res.profile.overflow_retries >= len(res.retried)

    def test_exhausted_attempts_degrade(self, contigs):
        res = _pressured(contigs, "grow-retry", warps=(0,), capacity=2,
                         max_grow_attempts=1)
        assert res.degraded  # 2 -> 4 slots cannot hold a real contig's table
        assert res.profile.contigs_dropped == len(res.degraded)


class TestScalarBackend:
    def test_scalar_drop_contig(self, contigs):
        kern = ScalarReferenceBackend(overflow_policy="drop-contig",
                                      table_capacity=4)
        res = kern.run(contigs[:4], K)
        assert res.degraded
        assert res.profile.contigs_dropped >= len(res.degraded)

    def test_scalar_grow_retry_matches_default_sizing(self, contigs):
        ref = ScalarReferenceBackend().run(contigs[:4], K)
        res = ScalarReferenceBackend(overflow_policy="grow-retry",
                                     table_capacity=64,
                                     max_grow_attempts=12).run(contigs[:4], K)
        assert res.right == ref.right and res.left == ref.left
        assert not res.degraded

    def test_scalar_raise_enriched(self, contigs):
        kern = ScalarReferenceBackend(table_capacity=4)
        with pytest.raises(HashTableFullError) as exc_info:
            kern.run(contigs[:2], K)
        assert exc_info.value.contig_id is not None
        assert exc_info.value.k == K
