"""FaultPlan / FaultInjector mechanics: determinism, matching, hooks."""

import numpy as np
import pytest

from repro.errors import BackendLaunchError, ModelError
from repro.kernels import CudaLocalAssemblyKernel
from repro.perfmodel.timing import predict_time
from repro.resilience import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedCrashError,
)
from repro.simt.device import A100

from .conftest import K

pytestmark = pytest.mark.resilience


class TestMatching:
    def test_spec_consumed_once(self):
        inj = FaultInjector(FaultPlan(faults=(
            FaultSpec(FaultKind.LAUNCH_FAILURE, launch=0),
        )))
        with pytest.raises(BackendLaunchError):
            inj.begin_launch()
        assert inj.begin_launch() == 1  # charge spent; second launch clean

    def test_times_budget(self):
        inj = FaultInjector(FaultPlan(faults=(
            FaultSpec(FaultKind.LAUNCH_FAILURE, times=2),
        )))
        for _ in range(2):
            with pytest.raises(BackendLaunchError):
                inj.begin_launch()
        inj.begin_launch()
        assert inj.counts() == {"launch-failure": 2}

    def test_launch_ordinal_filter(self):
        inj = FaultInjector(FaultPlan(faults=(
            FaultSpec(FaultKind.LAUNCH_FAILURE, launch=2),
        )))
        assert inj.begin_launch() == 0
        assert inj.begin_launch() == 1
        with pytest.raises(BackendLaunchError):
            inj.begin_launch()

    def test_suite_crash_device_filter(self):
        inj = FaultInjector(FaultPlan(faults=(
            FaultSpec(FaultKind.SUITE_CRASH, device="MI250X"),
        )))
        inj.before_run("A100", 21)  # no match
        with pytest.raises(InjectedCrashError):
            inj.before_run("MI250X", 21)

    def test_transient_suite_crash(self):
        inj = FaultInjector(FaultPlan(faults=(
            FaultSpec(FaultKind.SUITE_CRASH, transient=True),
        )))
        with pytest.raises(BackendLaunchError):
            inj.before_run("A100", 21)


class TestDeterminism:
    def test_read_corruption_replays_identically(self, contigs):
        def run_once():
            inj = FaultInjector(FaultPlan(faults=(
                FaultSpec(FaultKind.READ_CORRUPTION, launch=0, fraction=0.1),
            ), seed=13))
            kern = CudaLocalAssemblyKernel(A100, fault_injector=inj)
            return kern.run(contigs, K)

        a, b = run_once(), run_once()
        assert a.right == b.right and a.left == b.left

    def test_corruption_changes_output(self, contigs, clean_run):
        # launch=None matches every launch; ample times budget covers all
        inj = FaultInjector(FaultPlan(faults=(
            FaultSpec(FaultKind.READ_CORRUPTION, fraction=0.5, times=1000),
        ), seed=13))
        res = CudaLocalAssemblyKernel(A100, fault_injector=inj).run(contigs, K)
        assert inj.counts()["read-corruption"] >= 1
        assert res.right != clean_run.right or res.left != clean_run.left


class TestDegenerateProfile:
    @pytest.mark.parametrize("mode", ["zero-intops", "nan-bytes"])
    def test_perf_model_rejects(self, contigs, mode):
        inj = FaultInjector(FaultPlan(faults=(
            FaultSpec(FaultKind.DEGENERATE_PROFILE, mode=mode),
        )))
        res = CudaLocalAssemblyKernel(A100, fault_injector=inj).run(contigs, K)
        if mode == "nan-bytes":
            assert np.isnan(res.profile.hbm_bytes)
        with pytest.raises(ModelError):
            predict_time(res.profile, A100)


class TestObservation:
    def test_injector_observes_bus_events(self, contigs):
        inj = FaultInjector(FaultPlan(faults=(
            FaultSpec(FaultKind.TABLE_PRESSURE, launch=0, warps=(0,),
                      capacity=4),
        )))
        kern = CudaLocalAssemblyKernel(A100, overflow_policy="drop-contig",
                                       fault_injector=inj)
        res = kern.run(contigs, K)
        assert res.degraded
        sites = {rec.site for rec in inj.observed}
        assert "observe-launch" in sites and "observe-drop" in sites
        drops = [r for r in inj.observed if r.site == "observe-drop"]
        assert {r.detail["contig_id"] for r in drops} == set(res.degraded)
