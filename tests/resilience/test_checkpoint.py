"""CheckpointStore round-trips, validation, and suite crash/resume."""

import dataclasses
import json

import pytest

from repro.analysis.experiments import ExperimentConfig, ExperimentSuite
from repro.errors import CheckpointError
from repro.resilience import (
    CheckpointStore,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedCrashError,
    payload_crc,
    profile_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.simt.device import A100, PLATFORMS

from .conftest import K, SCALE, SEED

pytestmark = pytest.mark.resilience

CFG = dict(scale=SCALE, seed=SEED, k_values=(K,))


class TestRoundTrip:
    def test_result_survives_store(self, tmp_path, clean_run):
        store = CheckpointStore(tmp_path, meta={"scale": SCALE})
        store.save("A100", K, clean_run, clean_run.profile)
        result, full = store.load(A100, K)
        assert result_to_dict(result) == result_to_dict(clean_run)
        assert profile_to_dict(full) == profile_to_dict(clean_run.profile)
        assert store.completed() == {("A100", K)}

    def test_degraded_and_retried_persist(self, tmp_path, clean_run):
        marked = dataclasses.replace(clean_run, degraded=[3], retried=[5, 9])
        store = CheckpointStore(tmp_path)
        store.save("A100", K, marked, marked.profile)
        result, _ = store.load(A100, K)
        assert result.degraded == [3] and result.retried == [5, 9]

    def test_missing_is_none(self, tmp_path):
        assert CheckpointStore(tmp_path).load(A100, K) is None

    def test_clear(self, tmp_path, clean_run):
        store = CheckpointStore(tmp_path)
        store.save("A100", K, clean_run, clean_run.profile)
        store.clear()
        assert store.completed() == set()


class TestValidation:
    def test_meta_mismatch_rejected(self, tmp_path, clean_run):
        CheckpointStore(tmp_path, meta={"scale": 0.004}).save(
            "A100", K, clean_run, clean_run.profile)
        other = CheckpointStore(tmp_path, meta={"scale": 0.02})
        with pytest.raises(CheckpointError, match="different configuration"):
            other.load(A100, K)

    def test_corrupt_file_quarantined(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.path_for("A100", K)
        path.write_text("{not json")
        assert store.load(A100, K) is None
        assert not path.exists()
        assert [p.suffix for p in store.quarantined] == [".quarantine"]
        assert store.quarantined[0].exists()

    def test_crc_mismatch_quarantined(self, tmp_path, clean_run):
        store = CheckpointStore(tmp_path)
        path = store.save("A100", K, clean_run, clean_run.profile)
        payload = json.loads(path.read_text())
        payload["result"]["wall_time_s"] = 123.0  # bit-flip, stale CRC
        path.write_text(json.dumps(payload))
        assert store.load(A100, K) is None
        assert not path.exists() and len(store.quarantined) == 1

    def test_format_drift_rejected(self, tmp_path, clean_run):
        store = CheckpointStore(tmp_path)
        path = store.save("A100", K, clean_run, clean_run.profile)
        payload = json.loads(path.read_text())
        payload["format"] = 999
        payload["crc"] = payload_crc(payload)  # drift, not corruption
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError, match="format"):
            store.load(A100, K)

    def test_wrong_device_rejected(self, clean_run):
        data = result_to_dict(clean_run)
        with pytest.raises(CheckpointError, match="does not match"):
            result_from_dict(data, PLATFORMS[1])

    def test_completed_skips_mismatched_fingerprint(self, tmp_path, clean_run):
        CheckpointStore(tmp_path, meta={"scale": 0.004}).save(
            "A100", K, clean_run, clean_run.profile)
        other = CheckpointStore(tmp_path, meta={"scale": 0.02})
        assert other.completed() == set()
        same = CheckpointStore(tmp_path, meta={"scale": 0.004})
        assert same.completed() == {("A100", K)}

    def test_completed_skips_format_drift(self, tmp_path, clean_run):
        store = CheckpointStore(tmp_path)
        path = store.save("A100", K, clean_run, clean_run.profile)
        payload = json.loads(path.read_text())
        payload["format"] = 999
        path.write_text(json.dumps(payload))
        assert store.completed() == set()

    def test_completed_skips_unparseable_json(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.path_for("A100", K).write_text("{not json")
        (store.directory / "list.json").write_text("[1, 2]")
        assert store.completed() == set()


class TestGenericPayloads:
    """save_payload/load_payload: the generic framing used by the
    assembler pipeline's stage checkpoints."""

    DATA = {"spectrum": {"fingerprints": [1, 2, 3], "counts": [4, 5, 6]},
            "note": "stage payload"}

    def test_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path, meta={"pipeline": 1})
        store.save_payload("stage_kmers", 21, self.DATA)
        assert store.load_payload("stage_kmers", 21) == self.DATA

    def test_missing_is_none(self, tmp_path):
        assert CheckpointStore(tmp_path).load_payload("stage_kmers", 21) is None

    def test_keyed_by_name_and_k(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save_payload("stage_kmers", 21, {"a": 1})
        store.save_payload("stage_kmers", 33, {"a": 2})
        store.save_payload("stage_merge", 21, {"a": 3})
        assert store.load_payload("stage_kmers", 21) == {"a": 1}
        assert store.load_payload("stage_kmers", 33) == {"a": 2}
        assert store.load_payload("stage_merge", 21) == {"a": 3}

    def test_meta_mismatch_rejected(self, tmp_path):
        CheckpointStore(tmp_path, meta={"reads": "abc"}).save_payload(
            "stage_kmers", 21, self.DATA)
        other = CheckpointStore(tmp_path, meta={"reads": "xyz"})
        with pytest.raises(CheckpointError, match="different configuration"):
            other.load_payload("stage_kmers", 21)

    def test_crc_mismatch_quarantined(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save_payload("stage_kmers", 21, self.DATA)
        payload = json.loads(path.read_text())
        payload["data"]["note"] = "tampered"  # stale CRC
        path.write_text(json.dumps(payload))
        assert store.load_payload("stage_kmers", 21) is None
        assert not path.exists() and len(store.quarantined) == 1

    def test_missing_data_section_quarantined(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.save_payload("stage_kmers", 21, self.DATA)
        payload = json.loads(path.read_text())
        del payload["data"]
        payload["crc"] = payload_crc(payload)  # valid frame, no payload
        path.write_text(json.dumps(payload))
        assert store.load_payload("stage_kmers", 21) is None
        assert len(store.quarantined) == 1


class TestSuiteResume:
    def test_crash_then_resume_matches_uninterrupted(self, tmp_path):
        reference = ExperimentSuite(ExperimentConfig(**CFG))
        reference.run_all()

        inj = FaultInjector(FaultPlan(faults=(
            FaultSpec(FaultKind.SUITE_CRASH, run=1),
        )))
        crashed = ExperimentSuite(ExperimentConfig(
            **CFG, checkpoint_dir=str(tmp_path), fault_injector=inj))
        with pytest.raises(InjectedCrashError):
            crashed.run_all()
        done = crashed.checkpoint_store().completed()
        assert len(done) == 1  # exactly the runs before the crash

        resumed = ExperimentSuite(ExperimentConfig(
            **CFG, checkpoint_dir=str(tmp_path)))
        resumed.run_all()
        assert resumed._runs.keys() == reference._runs.keys()
        for key, ref_rec in reference._runs.items():
            got = resumed._runs[key]
            assert result_to_dict(got.result) == result_to_dict(ref_rec.result)
            assert profile_to_dict(got.full_profile) == \
                profile_to_dict(ref_rec.full_profile)
        n_resumed = sum(r["from_checkpoint"]
                        for r in resumed.resilience_summary())
        assert n_resumed == 1

    def test_transient_failure_retried_in_place(self):
        sleeps = []
        inj = FaultInjector(FaultPlan(faults=(
            FaultSpec(FaultKind.SUITE_CRASH, run=0, transient=True),
        )))
        suite = ExperimentSuite(ExperimentConfig(
            **CFG, fault_injector=inj, retry_sleep=sleeps.append))
        suite.run(PLATFORMS[0], K)
        assert sleeps == [suite.config.retry_backoff]
        assert inj.counts() == {"suite-crash": 1}

    def test_fatal_crash_not_retried(self):
        sleeps = []
        inj = FaultInjector(FaultPlan(faults=(
            FaultSpec(FaultKind.SUITE_CRASH, run=0),
        )))
        suite = ExperimentSuite(ExperimentConfig(
            **CFG, fault_injector=inj, retry_sleep=sleeps.append))
        with pytest.raises(InjectedCrashError):
            suite.run(PLATFORMS[0], K)
        assert sleeps == []
