"""CLI resilience surface: policy flags, checkpoint flag, error exits."""

import pytest

from repro.cli import main
from repro.genomics.io import read_dat, write_dat

from .conftest import K

pytestmark = pytest.mark.resilience


@pytest.fixture()
def dat_file(tmp_path, contigs):
    path = tmp_path / "in.dat"
    write_dat(contigs, path)
    return path


class TestOverflowPolicyFlag:
    def test_run_accepts_policies(self, tmp_path, dat_file):
        for policy in ("raise", "drop-contig", "grow-retry"):
            rc = main(["run", str(dat_file), str(K),
                       str(tmp_path / f"{policy}.fa"),
                       "--overflow-policy", policy])
            assert rc == 0

    def test_unknown_policy_rejected(self, tmp_path, dat_file):
        with pytest.raises(SystemExit):
            main(["run", str(dat_file), str(K), str(tmp_path / "o.fa"),
                  "--overflow-policy", "explode"])

    def test_scalar_backend_takes_policy(self, tmp_path, dat_file):
        rc = main(["run", str(dat_file), str(K), str(tmp_path / "o.fa"),
                   "--backend", "scalar", "--overflow-policy", "drop-contig"])
        assert rc == 0


class TestErrorExit:
    def test_repro_error_is_one_line_exit_1(self, tmp_path, capsys):
        # missing magic header -> read_dat raises DatasetError (ReproError)
        bad = tmp_path / "bad.dat"
        bad.write_text("name\tACGT\t2\tACGT\tIIII\tACGT\tIIII\n")
        capsys.readouterr()
        rc = main(["run", str(bad), "21", str(tmp_path / "o.fa")])
        assert rc == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err


class TestCheckpointFlag:
    def test_experiment_writes_and_reuses_checkpoints(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        args = ["experiment", "fig5", "--scale", "0.002",
                "--checkpoint-dir", str(ckpt)]
        assert main(args) == 0
        files = list(ckpt.glob("*.json"))
        assert files  # one checkpoint per (device, k)
        capsys.readouterr()
        assert main(args) == 0  # second invocation resumes from disk
        out = capsys.readouterr().out
        assert "from_checkpoint" in out or "resilience" in out

    def test_mismatched_checkpoint_dir_fails_cleanly(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        assert main(["experiment", "fig5", "--scale", "0.002",
                     "--checkpoint-dir", str(ckpt)]) == 0
        capsys.readouterr()
        rc = main(["experiment", "fig5", "--scale", "0.003",
                   "--checkpoint-dir", str(ckpt)])
        assert rc == 1
        assert "error: CheckpointError" in capsys.readouterr().err


def test_dat_roundtrip_fixture_sane(dat_file, contigs):
    assert len(read_dat(dat_file)) == len(contigs)
