"""The shared backoff schedule: geometric growth, seeded jitter bounds."""

import numpy as np
import pytest

from repro.errors import BackendLaunchError, ReproError
from repro.resilience import DEFAULT_JITTER, backoff_delay, retry_transient

pytestmark = pytest.mark.resilience


class TestBackoffDelay:
    def test_geometric_without_jitter(self):
        assert [backoff_delay(a, backoff=0.05) for a in range(4)] == \
            [0.05, 0.1, 0.2, 0.4]

    def test_jitter_stays_within_the_documented_band(self):
        rng = np.random.default_rng(42)
        for attempt in range(6):
            base = 0.05 * 2 ** attempt
            lo, hi = base * (1 - DEFAULT_JITTER), base * (1 + DEFAULT_JITTER)
            for _ in range(200):
                delay = backoff_delay(attempt, backoff=0.05,
                                      jitter=DEFAULT_JITTER, rng=rng)
                assert lo <= delay <= hi

    def test_jitter_is_deterministic_from_the_seed(self):
        a = [backoff_delay(i, jitter=0.25, rng=np.random.default_rng(7))
             for i in range(5)]
        b = [backoff_delay(i, jitter=0.25, rng=np.random.default_rng(7))
             for i in range(5)]
        assert a == b
        # and a different seed decorrelates the schedule
        c = [backoff_delay(i, jitter=0.25, rng=np.random.default_rng(8))
             for i in range(5)]
        assert a != c

    def test_jitter_requires_a_seeded_generator(self):
        with pytest.raises(ValueError, match="seeded"):
            backoff_delay(0, jitter=0.25)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="attempt"):
            backoff_delay(-1)
        with pytest.raises(ValueError, match="jitter"):
            backoff_delay(0, jitter=1.0, rng=np.random.default_rng(0))


class TestRetryTransient:
    def test_jittered_sleeps_stay_in_band(self):
        sleeps = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] <= 3:
                raise BackendLaunchError("transient")
            return "ok"

        out = retry_transient(flaky, retries=3, backoff=0.1, jitter=0.25,
                              rng=np.random.default_rng(3),
                              sleep=sleeps.append)
        assert out == "ok" and len(sleeps) == 3
        for attempt, delay in enumerate(sleeps):
            base = 0.1 * 2 ** attempt
            assert base * 0.75 <= delay <= base * 1.25

    def test_non_transient_errors_propagate_immediately(self):
        def fatal():
            raise ReproError("not transient")

        with pytest.raises(ReproError, match="not transient"):
            retry_transient(fatal, retries=5, sleep=lambda _: None)
