"""Shared fixtures for the resilience lane (kept tiny for speed)."""

import pytest

from repro.datasets.generate import generate_paper_dataset
from repro.kernels import CudaLocalAssemblyKernel
from repro.simt.device import A100

SCALE = 0.004
SEED = 7
K = 21


@pytest.fixture(scope="package")
def contigs():
    return generate_paper_dataset(K, scale=SCALE, seed=SEED)


@pytest.fixture(scope="package")
def clean_run(contigs):
    """An un-faulted, adequately-sized reference run."""
    return CudaLocalAssemblyKernel(A100).run(contigs, K)
