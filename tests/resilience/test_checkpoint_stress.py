"""Concurrency stress for :class:`CheckpointStore`.

N processes hammer the same checkpoint directory — saving the same
``(device, k)`` run, loading it back, and constructing fresh stores
(which sweep stale scratch files) the whole time. The invariants:

* a load never observes a torn/corrupt file (writes are staged per-pid
  and renamed atomically);
* scratch files of *live* writers are never swept out from under them;
* after the dust settles there is exactly one checkpoint and zero
  ``.tmp`` leftovers.
"""

import json
import os
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core.extension import WalkState
from repro.kernels.engine.backend import KernelRunResult
from repro.resilience import CheckpointStore
from repro.simt.counters import KernelProfile
from repro.simt.device import A100

pytestmark = pytest.mark.resilience

META = {"scale": 0.004, "seed": 7}
N_PROCS = 4
N_ITERS = 25


def _tiny_result(tag: int) -> KernelRunResult:
    """A minimal, valid run result whose payload varies with ``tag``."""
    profile = KernelProfile(warp_size=32)
    profile.contigs = 1
    return KernelRunResult(
        device=None, k=21, profile=profile,
        right=[("ACGT", WalkState.END)], left=[("", WalkState.MISSING)],
        degraded=[tag],
    )


def _hammer(args: tuple) -> int:
    """Worker: save/load the same run repeatedly; returns OK iterations."""
    directory, worker_id, iters = args
    ok = 0
    for i in range(iters):
        # fresh store every iteration: exercises the stale-tmp sweep
        # racing against other processes' in-flight writes
        store = CheckpointStore(directory, meta=META)
        result = _tiny_result(worker_id * 1000 + i)
        store.save("A100", 21, result, result.profile)
        loaded = store.load(A100, 21)
        assert loaded is not None
        loaded_result, _ = loaded
        # whatever writer won, the record is one of ours and intact
        assert loaded_result.right == [("ACGT", WalkState.END)]
        assert len(loaded_result.degraded) == 1
        assert store.completed() == {("A100", 21)}
        ok += 1
    return ok


class TestConcurrentWriters:
    def test_no_corruption_or_leaks(self, tmp_path):
        with ProcessPoolExecutor(max_workers=N_PROCS) as pool:
            results = list(pool.map(
                _hammer,
                [(str(tmp_path), w, N_ITERS) for w in range(N_PROCS)]))
        assert results == [N_ITERS] * N_PROCS

        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == ["A100_k21.json"]  # one checkpoint, zero .tmp
        payload = json.loads((tmp_path / "A100_k21.json").read_text())
        assert payload["meta"] == META

        final = CheckpointStore(tmp_path, meta=META)
        assert final.load(A100, 21) is not None
        assert final.completed() == {("A100", 21)}


class TestTmpLifecycle:
    def test_unique_per_process_tmp_name(self, tmp_path):
        store = CheckpointStore(tmp_path, meta=META)
        result = _tiny_result(0)
        path = store.save("A100", 21, result, result.profile)
        assert path.name == "A100_k21.json"
        assert not list(tmp_path.glob("*.tmp"))

    def test_failed_save_cleans_its_tmp(self, tmp_path, monkeypatch):
        store = CheckpointStore(tmp_path, meta=META)

        def boom(fd):
            raise OSError("disk on fire")

        monkeypatch.setattr(os, "fsync", boom)
        result = _tiny_result(0)
        with pytest.raises(OSError, match="disk on fire"):
            store.save("A100", 21, result, result.profile)
        assert not list(tmp_path.glob("*.tmp"))
        assert not (tmp_path / "A100_k21.json").exists()

    def test_init_sweeps_dead_writer_tmps(self, tmp_path):
        stale_pid = (tmp_path / "A100_k21.json.999999999.tmp")
        stale_pid.write_text("{partial")
        legacy = tmp_path / "A100_k21.tmp"  # pre-fix shared tmp name
        legacy.write_text("{partial")
        CheckpointStore(tmp_path, meta=META)
        assert not stale_pid.exists()
        assert not legacy.exists()

    def test_init_keeps_live_writer_tmps(self, tmp_path):
        live = tmp_path / f"A100_k21.json.{os.getpid()}.tmp"
        live.write_text("{in flight")
        CheckpointStore(tmp_path, meta=META)
        assert live.exists()  # this process is alive: not stale
        live.unlink()
