"""Theoretical II model must reproduce paper Table VI exactly."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.perfmodel import theoretical as th

# Table VI of the paper, verbatim.
TABLE_VI = {
    21: (430, 89, 4.831),
    33: (610, 125, 4.880),
    55: (914, 191, 4.785),
    77: (1270, 257, 4.942),
}


@pytest.mark.parametrize("k", sorted(TABLE_VI))
def test_intops_per_loop_cycle(k):
    assert th.intops_per_loop_cycle(k) == TABLE_VI[k][0]


@pytest.mark.parametrize("k", sorted(TABLE_VI))
def test_bytes_per_loop_cycle(k):
    assert th.bytes_per_loop_cycle(k) == TABLE_VI[k][1]


@pytest.mark.parametrize("k", sorted(TABLE_VI))
def test_theoretical_ii(k):
    assert th.theoretical_ii(k) == pytest.approx(TABLE_VI[k][2], abs=0.001)


def test_equation_2_construct_bytes():
    # B1 = 2k + 13
    assert th.construct_bytes(21) == 55
    assert th.construct_bytes(77) == 167


def test_equation_3_lookup_bytes():
    # B2 = k + 13
    assert th.lookup_bytes(21) == 34
    assert th.lookup_bytes(77) == 90


@given(st.integers(1, 1000))
def test_ii_is_ratio(k):
    assert th.theoretical_ii(k) == pytest.approx(
        th.intops_per_loop_cycle(k) / th.bytes_per_loop_cycle(k)
    )


@given(st.integers(min_value=-5, max_value=0))
def test_rejects_nonpositive(k):
    with pytest.raises(ModelError):
        th.construct_bytes(k)
    with pytest.raises(ModelError):
        th.lookup_bytes(k)
