"""Tests for the timing model (issue / memory / latency bounds)."""

import pytest

from repro.errors import ModelError
from repro.perfmodel.timing import (
    TimingBreakdown,
    apply_timing,
    extrapolate_profile,
    predict_time,
)
from repro.simt.counters import KernelProfile
from repro.simt.device import A100, MAX1550, MI250X


def _profile(construct=int(1e9), walk=int(1e8), hbm=1e9, warp=32,
             c_chain=0.0, w_chain=0.0):
    p = KernelProfile(warp_size=warp, walk_issue_width=warp)
    p.construct_intops = construct
    p.walk_intops = walk
    p.intops = construct + walk
    p.hbm_bytes = hbm
    p.construct_chain_cycles = c_chain
    p.walk_chain_cycles = w_chain
    return p


class TestPredict:
    def test_construct_issue_time(self):
        p = _profile(construct=int(358e9), walk=0, hbm=0)
        bd = predict_time(p, A100)
        assert bd.construct_issue == pytest.approx(1.0 / A100.pipeline_efficiency,
                                                   rel=1e-6)

    def test_walk_charged_full_warp_width(self):
        """The predication penalty: 1 active lane costs warp_size slots."""
        p32 = _profile(construct=0, walk=int(1e9), warp=32)
        p64 = _profile(construct=0, walk=int(1e9), warp=64)
        assert predict_time(p64, MI250X).walk_issue > predict_time(p32, A100).walk_issue

    def test_memory_time(self):
        p = _profile(hbm=1555e9 * A100.memory_efficiency)
        assert predict_time(p, A100).memory == pytest.approx(1.0)

    def test_latency_from_chains(self):
        p = _profile(w_chain=1.41e9)  # one second of A100 cycles
        bd = predict_time(p, A100)
        assert bd.walk_latency == pytest.approx(1.0)

    def test_total_is_max_of_resources(self):
        p = _profile(construct=int(1e6), walk=0, hbm=1e12)
        bd = predict_time(p, A100)
        assert bd.bound == "memory"
        assert bd.total == bd.memory

    def test_phases_serialize_in_issue(self):
        bd = TimingBreakdown(1.0, 2.0, 0.1, 0.0, 0.0)
        assert bd.issue == 3.0
        assert bd.total == 3.0
        assert bd.bound == "issue"

    def test_rejects_empty_profile(self):
        with pytest.raises(ModelError):
            predict_time(KernelProfile(), A100)

    def test_intel_uses_timing_peak(self):
        """The Max 1550 timing peak differs from its roofline ceiling."""
        p = _profile(construct=int(1e9), walk=0, hbm=0)
        bd = predict_time(p, MAX1550)
        expected = 1e9 / (MAX1550.timing_peak_gintops * 1e9)
        assert bd.construct_issue == pytest.approx(expected)


class TestApply:
    def test_sets_seconds(self):
        p = _profile()
        bd = apply_timing(p, A100)
        assert p.seconds == bd.total > 0

    def test_scale_extrapolates_throughput_not_latency(self):
        p = _profile(construct=int(1e9), walk=0, hbm=0, w_chain=1.41e7)
        full = apply_timing(_profile(construct=int(1e9), walk=0, hbm=0,
                                     w_chain=1.41e7), A100, parallel_scale=1.0)
        half = apply_timing(p, A100, parallel_scale=0.5)
        assert half.construct_issue == pytest.approx(2 * full.construct_issue)
        assert half.walk_latency == pytest.approx(full.walk_latency)


class TestExtrapolateProfile:
    def test_counters_scale(self):
        p = _profile()
        p.inserts = 100
        full = extrapolate_profile(p, A100, 0.25)
        assert full.inserts == 400
        assert full.intops == 4 * p.intops
        assert full.hbm_bytes == pytest.approx(4 * p.hbm_bytes)

    def test_chains_do_not_scale(self):
        p = _profile(w_chain=5.0)
        full = extrapolate_profile(p, A100, 0.1)
        assert full.walk_chain_cycles == 5.0

    def test_consistency_of_derived_metrics(self):
        p = _profile()
        full = extrapolate_profile(p, A100, 0.5)
        # II is scale-invariant (both counters scale together)
        assert full.intop_intensity == pytest.approx(p.intop_intensity)
        assert full.seconds > 0

    def test_original_untouched(self):
        p = _profile()
        before = p.intops
        extrapolate_profile(p, A100, 0.5)
        assert p.intops == before

    def test_rejects_bad_scale(self):
        with pytest.raises(ModelError):
            extrapolate_profile(_profile(), A100, 0.0)
        with pytest.raises(ModelError):
            extrapolate_profile(_profile(), A100, 2.0)
