"""Tests for the Pennycook performance-portability metric."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.perfmodel.portability import pennycook

effs = st.lists(st.floats(0.01, 1.0), min_size=1, max_size=6)


class TestPennycook:
    def test_single_platform(self):
        assert pennycook([0.5]) == 0.5

    def test_equal_efficiencies(self):
        assert pennycook([0.2, 0.2, 0.2]) == pytest.approx(0.2)

    def test_harmonic_mean(self):
        # 2 / (1/0.5 + 1/0.25) = 2/6
        assert pennycook([0.5, 0.25]) == pytest.approx(1 / 3)

    def test_zero_platform_zeroes_metric(self):
        assert pennycook([0.9, 0.0, 0.9]) == 0.0

    def test_paper_table4_row(self):
        # Table IV k=21: 12.8%, 15.1%, 15.6% -> P = 14.4%
        assert pennycook([0.128, 0.151, 0.156]) == pytest.approx(0.144, abs=0.001)

    def test_paper_table7_row(self):
        # Table VII k=21: 17.1%, 55.4%, 13.4%. The true harmonic mean is
        # 19.8%; the paper prints 18.0% (its arithmetic is slightly off —
        # Table IV's rows all check out, see test above).
        assert pennycook([0.171, 0.554, 0.134]) == pytest.approx(0.198, abs=0.001)

    def test_rejects_empty(self):
        with pytest.raises(ModelError):
            pennycook([])

    def test_rejects_out_of_range(self):
        with pytest.raises(ModelError):
            pennycook([1.2])
        with pytest.raises(ModelError):
            pennycook([-0.1])

    @given(effs)
    def test_bounded_by_min_and_max(self, es):
        p = pennycook(es)
        assert min(es) - 1e-12 <= p <= max(es) + 1e-12

    @given(effs)
    def test_below_arithmetic_mean(self, es):
        """Harmonic mean never exceeds the arithmetic mean."""
        assert pennycook(es) <= sum(es) / len(es) + 1e-12

    @given(st.floats(0.01, 1.0), st.integers(1, 5))
    def test_identical_platforms(self, e, n):
        assert pennycook([e] * n) == pytest.approx(e)
