"""Tests for the INTOP roofline model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.perfmodel.roofline import roofline_ceiling, roofline_point, roofline_series
from repro.simt.counters import KernelProfile
from repro.simt.device import A100, MAX1550


def _profile(intops, hbm_bytes, seconds):
    p = KernelProfile()
    p.intops = intops
    p.hbm_bytes = hbm_bytes
    p.seconds = seconds
    return p


class TestCeiling:
    def test_memory_bound_region(self):
        # below machine balance (0.23): ceiling = II * BW
        assert roofline_ceiling(A100, 0.1) == pytest.approx(0.1 * 1555.0)

    def test_compute_bound_region(self):
        assert roofline_ceiling(A100, 10.0) == 358.0

    def test_ridge_point(self):
        mb = A100.machine_balance
        assert roofline_ceiling(A100, mb) == pytest.approx(358.0, rel=1e-6)

    def test_rejects_nonpositive_ii(self):
        with pytest.raises(ModelError):
            roofline_ceiling(A100, 0.0)

    @given(st.floats(1e-3, 1e3))
    def test_ceiling_never_exceeds_peak(self, ii):
        assert roofline_ceiling(A100, ii) <= 358.0


class TestPoint:
    def test_compute_bound_classification(self):
        p = _profile(int(10e9), 1e9, 0.1)  # II = 10
        pt = roofline_point(p, A100)
        assert pt.bound == "compute"
        assert pt.ii == pytest.approx(10.0)
        assert pt.gintops_per_s == pytest.approx(100.0)
        assert pt.fraction_of_ceiling == pytest.approx(100 / 358)

    def test_memory_bound_classification(self):
        p = _profile(int(1e9), 1e10, 0.1)  # II = 0.1 < 0.23
        pt = roofline_point(p, A100)
        assert pt.bound == "memory"
        assert pt.ceiling_gintops == pytest.approx(0.1 * 1555.0)

    def test_intel_lower_balance(self):
        # II = 0.15 is memory-bound on A100 (0.23) but compute-bound on
        # the Max 1550 (0.09)
        p = _profile(int(1.5e9), 1e10, 0.1)
        assert roofline_point(p, A100).bound == "memory"
        assert roofline_point(p, MAX1550).bound == "compute"


class TestSeries:
    def test_shape_and_monotonicity(self):
        ii, ceil = roofline_series(A100, 0.01, 10, n=50)
        assert ii.shape == ceil.shape == (50,)
        assert (np.diff(ceil) >= -1e9).all()
        assert ceil.max() == pytest.approx(358.0)

    def test_rejects_bad_range(self):
        with pytest.raises(ModelError):
            roofline_series(A100, 1.0, 0.5)
