"""Tests for the potential speed-up plot (Figure 9)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.perfmodel.speedup import (
    SpeedupPoint,
    iso_curve,
    iso_curve_levels,
    speedup_point,
)


class TestPoint:
    def test_axes(self):
        p = speedup_point("A100", 21, alg_eff=0.25, arch_eff=0.2)
        assert p.speedup_by_improving_ai == pytest.approx(4.0)
        assert p.speedup_by_improving_performance == pytest.approx(5.0)
        assert p.combined_potential == pytest.approx(20.0)

    def test_perfect_kernel(self):
        p = speedup_point("X", 33, 1.0, 1.0)
        assert p.combined_potential == 1.0

    def test_zero_efficiency_infinite_potential(self):
        p = speedup_point("X", 33, 0.0, 0.5)
        assert p.speedup_by_improving_ai == float("inf")

    def test_rejects_out_of_range(self):
        with pytest.raises(ModelError):
            SpeedupPoint("X", 21, 1.5, 0.5)
        with pytest.raises(ModelError):
            SpeedupPoint("X", 21, 0.5, -0.1)

    @given(st.floats(0.01, 1.0), st.floats(0.01, 1.0))
    def test_reciprocal_relation(self, a, b):
        p = speedup_point("X", 21, a, b)
        assert p.speedup_by_improving_ai == pytest.approx(1 / a)
        assert p.speedup_by_improving_performance == pytest.approx(1 / b)


class TestIsoCurves:
    def test_levels_match_figure(self):
        assert iso_curve_levels() == (1.0, 1.33, 2.0, 4.0, 8.0, 16.0, 32.0)

    def test_curve_lies_on_level(self):
        for x, y in iso_curve(4.0):
            if y < 1.0:  # away from the clamp
                assert 1.0 / (x * y) == pytest.approx(4.0, rel=1e-6)

    def test_curve_within_unit_box(self):
        for level in iso_curve_levels():
            for x, y in iso_curve(level):
                assert 0 < x <= 1.0 and 0 < y <= 1.0

    def test_rejects_sub_one_level(self):
        with pytest.raises(ModelError):
            iso_curve(0.5)
