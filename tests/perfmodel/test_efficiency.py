"""Tests for architectural and algorithm efficiency (Tables IV/VII)."""

import pytest

from repro.perfmodel.efficiency import algorithm_efficiency, architectural_efficiency
from repro.perfmodel.theoretical import theoretical_ii
from repro.simt.counters import KernelProfile
from repro.simt.device import A100


def _profile(intops, hbm_bytes, seconds):
    p = KernelProfile()
    p.intops = intops
    p.hbm_bytes = hbm_bytes
    p.seconds = seconds
    return p


class TestArchitectural:
    def test_compute_bound_fraction(self):
        # II=10 (compute bound): ceiling 358; achieved 35.8 -> 10%
        p = _profile(int(35.8e9), 3.58e9, 1.0)
        assert architectural_efficiency(p, A100) == pytest.approx(0.1)

    def test_memory_bound_fraction(self):
        # II=0.1: ceiling = 155.5; achieved 15.55 -> 10%
        p = _profile(int(15.55e9), 155.5e9, 1.0)
        assert architectural_efficiency(p, A100) == pytest.approx(0.1)

    def test_capped_at_one(self):
        p = _profile(int(1e12), 1e9, 0.1)
        assert architectural_efficiency(p, A100) == 1.0


class TestAlgorithm:
    def test_fraction_of_theoretical(self):
        ii = theoretical_ii(21)
        p = _profile(int(ii / 2 * 1e9), 1e9, 1.0)  # empirical II = theory/2
        assert algorithm_efficiency(p, 21) == pytest.approx(0.5)

    def test_capped_at_one(self):
        p = _profile(int(100e9), 1e9, 1.0)  # II = 100 >> theory
        assert algorithm_efficiency(p, 21) == 1.0

    def test_depends_on_k(self):
        p = _profile(int(2.4e9), 1e9, 1.0)  # II = 2.4
        # theoretical II barely changes with k, so efficiencies are close
        # but not equal
        assert algorithm_efficiency(p, 21) != algorithm_efficiency(p, 55)
