"""Regenerates paper Table III: architectural feature comparison."""

from conftest import banner

from repro.analysis.report import render_dict_table


def test_table3_architecture(suite, benchmark):
    rows = benchmark(suite.table3)
    print(banner("Table III"))
    print(render_dict_table(rows))
    by_board = {r["board"]: r for r in rows}
    assert by_board["NVIDIA A100"]["l2_cache_mb"] == 40
    assert by_board["AMD MI250X"]["l2_cache_mb"] == 8  # per die
    assert by_board["Intel MAX1550"]["l2_cache_mb"] == 204  # per tile
