"""Extension: contrast the two core bioinformatics kernels.

The paper's related work ([5], the ADEPT study) examined a dynamic-
programming alignment kernel on the same three GPUs; the introduction
contrasts its characteristics with local assembly's. This bench puts
numbers on the contrast using our implementations of both: Smith-Waterman
(regular wavefront parallelism, predictable access) vs local assembly
(irregular hash probing, serial walks).
"""

import numpy as np
from conftest import BENCH_SCALE, banner

from repro.analysis.report import render_table
from repro.core.extension import PRODUCTION_POLICY
from repro.genomics.dna import decode, random_sequence
from repro.kernels import CudaLocalAssemblyKernel
from repro.metahipmer.smith_waterman import BandedAligner
from repro.simt.device import A100


def test_kernel_contrast_sw_vs_locassm(suite, benchmark):
    # local assembly: measured predication + probe irregularity
    contigs = suite.dataset(21)
    kern = CudaLocalAssemblyKernel(A100, policy=PRODUCTION_POLICY)
    la = kern.run(contigs, 21, parallel_scale=BENCH_SCALE).profile

    # Smith-Waterman: every wavefront cell is useful work; its "active
    # lane fraction" is the mean diagonal occupancy of the band
    rng = np.random.default_rng(0)
    target = decode(random_sequence(400, rng))
    query = target[50:250]
    aligner = BandedAligner(band=16)
    benchmark(lambda: aligner.align(query, target, diag_offset=50))
    band_width = 2 * 16 + 1
    sw_active = min(1.0, band_width / 32)  # 32-wide warps over the band

    rows = [
        ["local assembly", f"{la.active_lane_fraction:.3f}",
         f"{la.mean_insert_probes:.2f}", "hash-random", "serial mer-walk"],
        ["Smith-Waterman", f"{sw_active:.3f}", "1.00",
         "streaming band", "wavefront-parallel"],
    ]
    print(banner("Kernel contrast — local assembly vs alignment"))
    print(render_table(["kernel", "active-lane fraction", "probes/access",
                        "memory pattern", "parallel structure"], rows))

    # the contrast the paper's introduction draws, as numbers:
    assert la.active_lane_fraction < sw_active
    assert la.mean_insert_probes > 1.0
