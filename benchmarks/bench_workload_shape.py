"""Extension: the walk-workload shape underlying the paper's analysis.

Figure 4 and the binning discussion rest on two workload properties this
bench surfaces: walk lengths grow with k (so the single-lane walk phase
dominates at large k — the MI250X story) and vary widely within a dataset
(so unbinned launches stall warps).
"""

from conftest import BENCH_SCALE, banner

from repro.analysis.report import render_dict_table
from repro.analysis.walkstats import collect_walk_stats, summarize_across_k
from repro.core.extension import PRODUCTION_POLICY
from repro.kernels import CudaLocalAssemblyKernel
from repro.simt.device import A100


def test_workload_shape(suite, benchmark):
    kern = CudaLocalAssemblyKernel(A100, policy=PRODUCTION_POLICY)
    runs = {}
    for k in suite.config.k_values:
        runs[k] = kern.run(suite.dataset(k), k, parallel_scale=BENCH_SCALE)
    rows = benchmark(lambda: summarize_across_k(runs))

    print(banner("Walk workload shape per k"))
    print(render_dict_table(rows))

    by_k = {r["k"]: r for r in rows}
    ks = sorted(by_k)
    # walks lengthen with k (the predication-dominance mechanism)
    assert by_k[ks[-1]]["mean_len"] > by_k[ks[0]]["mean_len"]
    # and are strongly non-uniform at every k (the binning motivation)
    assert all(r["cv"] > 0.3 for r in rows)
    # forks exist but are the minority outcome
    assert all(0 <= r["fork_frac"] < 0.3 for r in rows)
