"""Engine optimisation: flatten once per (bin, end), re-hash per k.

The k-schedule (Figures 2/4) reruns every launch at up to four k values
over the *same* (bin, end) read streams. The staged prepare splits into a
k-independent flatten (read concatenation, offsets, capacity bounds) and
a per-k finish (windowed hashing, fingerprints, seeds), so across the
4-entry schedule only the hashing pass reruns. This bench measures the
pre-processing saving on the k=21 dataset (the schedule's entry point,
where every bin runs at every k in the worst case).
"""

from conftest import banner

from repro.analysis.report import render_table
from repro.core.binning import bin_contigs
from repro.core.pipeline import DEFAULT_K_SCHEDULE
from repro.genomics.contig import End
from repro.kernels.engine import BatchPreparer, PrepareCache


def _prepare_all(prep, contigs, bins, cache=None):
    for k in DEFAULT_K_SCHEDULE:
        for b in bins:
            for end in (End.RIGHT, End.LEFT):
                prep.prepare(contigs, b, end, k, cache=cache)


def test_engine_prepare_reuse(suite, benchmark):
    contigs = suite.dataset(21)
    bins = bin_contigs(contigs, 21, 2.0, None, 0.7)
    prep = BatchPreparer(seed=0)

    import time

    t0 = time.perf_counter()
    _prepare_all(prep, contigs, bins)  # flatten every (bin, end, k)
    cold = time.perf_counter() - t0

    cache = PrepareCache()
    t0 = time.perf_counter()
    _prepare_all(prep, contigs, bins, cache=cache)  # flatten once per (bin, end)
    warm = time.perf_counter() - t0

    benchmark.pedantic(
        lambda: _prepare_all(prep, contigs, bins, cache=PrepareCache()),
        rounds=3, iterations=1,
    )

    print(banner("Engine — prepare reuse across the k-schedule"))
    n_launch_preps = len(DEFAULT_K_SCHEDULE) * len(bins) * 2
    rows = [
        ["no reuse", n_launch_preps, n_launch_preps, round(cold * 1e3, 2)],
        ["flatten cache", n_launch_preps, cache.misses, round(warm * 1e3, 2)],
    ]
    print(render_table(["mode", "prepares", "flattens", "ms"], rows))
    print(f"speedup: {cold / warm:.2f}x "
          f"(cache: {cache.hits} hits / {cache.misses} misses)")

    # the cache flattened each (bin, end) exactly once...
    assert cache.misses == 2 * len(bins)
    assert cache.hits == n_launch_preps - cache.misses
    # ...and reuse must not be slower than re-flattening every k
    assert warm <= cold * 1.10
