"""Ablation: sensitivity of the headline conclusions to model constants.

The two least-certain constants in the simulator are the L2 churn factor
(conflict/interleaving pressure in the cache model) and the per-device
pipeline efficiency. This bench sweeps both and asserts that the paper's
headline *relations* — AMD slowest at k=77, Intel's intensity above AMD's,
AMD moving the most bytes — hold across the whole sweep, i.e. the
reproduction's conclusions are not artifacts of one calibration point.
"""

from conftest import BENCH_SCALE, banner

from repro.analysis.report import render_table
from repro.core.extension import PRODUCTION_POLICY
from repro.kernels import kernel_for_device
from repro.perfmodel.timing import extrapolate_profile
from repro.simt.device import PLATFORMS

K = 77


def _profiles(suite, l2_churn):
    out = {}
    for device in PLATFORMS:
        kern = kernel_for_device(device, policy=PRODUCTION_POLICY,
                                 l2_churn=l2_churn)
        res = kern.run(suite.dataset(K), K, parallel_scale=BENCH_SCALE)
        out[device.name] = extrapolate_profile(res.profile, device,
                                               BENCH_SCALE)
    return out


def test_ablation_l2_churn_sensitivity(suite, benchmark):
    rows = []
    for churn in (1.0, 2.0, 4.0, 8.0):
        profiles = _profiles(suite, churn)
        rows.append([
            churn,
            round(profiles["A100"].seconds * 1e3, 2),
            round(profiles["MI250X"].seconds * 1e3, 2),
            round(profiles["MAX1550"].seconds * 1e3, 2),
            round(profiles["MI250X"].gbytes / profiles["A100"].gbytes, 2),
        ])
        # headline relations must survive the sweep
        assert profiles["MI250X"].seconds > profiles["A100"].seconds
        assert profiles["MI250X"].seconds > profiles["MAX1550"].seconds
        assert profiles["MI250X"].gbytes > profiles["A100"].gbytes
        assert (profiles["MI250X"].intop_intensity
                < profiles["MAX1550"].intop_intensity)
    benchmark.pedantic(lambda: _profiles(suite, 4.0), rounds=1, iterations=1)

    print(banner(f"Ablation — L2 churn sweep (k={K})"))
    print(render_table(
        ["l2_churn", "A100 (ms)", "MI250X (ms)", "MAX1550 (ms)",
         "AMD/NV byte ratio"], rows))


def test_ablation_pipeline_efficiency_sensitivity(suite, benchmark):
    """Halving/doubling sustained issue rates rescales times but cannot
    reorder the devices (the ordering comes from measured counters)."""
    from repro.perfmodel.timing import predict_time

    base = _profiles(suite, 4.0)
    rows = []
    for eff in (0.5, 1.0):
        times = {}
        for device in PLATFORMS:
            dev = device.with_(pipeline_efficiency=eff)
            times[device.name] = predict_time(base[device.name], dev).total
        rows.append([eff] + [round(times[d.name] * 1e3, 2) for d in PLATFORMS])
        assert times["MI250X"] > times["A100"]
        assert times["MI250X"] > times["MAX1550"]
    benchmark(lambda: predict_time(base["A100"], PLATFORMS[0]))

    print(banner(f"Ablation — pipeline efficiency sweep (k={K})"))
    print(render_table(["efficiency", "A100 (ms)", "MI250X (ms)",
                        "MAX1550 (ms)"], rows))
