"""Regenerates paper Table VII: algorithm efficiency + Pennycook P_alg.

Paper values for comparison (k: A100 / MI250X / Max1550 / P_alg):
21: 17.1 / 55.4 / 13.4 / 18.0   33: 17.6 / 31.4 / 15.8 / 20.0
55: 21.1 / 26.7 / 30.0 / 20.3   77: 27.2 / 28.9 / 60.9 / 19.5
(average P_alg 19.38%). Note the paper's per-vendor profilers count
INTOPs differently (its AMD counts carry a x64 wavefront factor), which
our unified accounting does not reproduce; see EXPERIMENTS.md.
"""

from conftest import banner

from repro.analysis.report import render_dict_table


def test_table7_algorithm_efficiency(suite, benchmark):
    suite.run_all()
    data = benchmark(suite.table7)
    print(banner("Table VII"))
    print(render_dict_table(data["rows"]))
    print(f"average P_alg: {data['average_P_alg']}% (paper: 19.38%)")
    assert 0 < data["average_P_alg"] <= 100
