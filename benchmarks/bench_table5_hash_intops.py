"""Regenerates paper Table V: integer operations in the hash function.

Exact closed-form reproduction (215 / 305 / 457 / 635 INTOPs for
k = 21 / 33 / 55 / 77). The benchmarked operation is the vectorized
MurmurHashAligned2 whose cost the table models.
"""

import numpy as np
from conftest import banner

from repro.analysis.report import render_dict_table
from repro.hashing.murmur import murmur2_batch

PAPER_TABLE_V = {21: 215, 33: 305, 55: 457, 77: 635}


def test_table5_hash_intops(suite, benchmark):
    keys = np.random.default_rng(0).integers(0, 4, size=(100_000, 21),
                                             dtype=np.uint8)
    benchmark(lambda: murmur2_batch(keys))
    rows = suite.table5()
    print(banner("Table V"))
    print(render_dict_table(rows))
    for row in rows:
        assert row["INTOP1"] == PAPER_TABLE_V[row["k"]]
