"""Ablation: the three atomic-insert protocols (paper Appendix A).

Runs all three ports at the *same* warp width (32) on the same dataset so
only the insert protocol differs: CUDA's ``__match_any_sync`` merge
resolves same-key CAS losers in-iteration, HIP's done-flag loop and
SYCL's sub-group barrier retry them. Measured: probe iterations,
synchronization ops, and instruction overhead.
"""

import pytest
from conftest import BENCH_SCALE, banner

from repro.analysis.report import render_table
from repro.core.extension import PRODUCTION_POLICY
from repro.kernels import (
    CudaLocalAssemblyKernel,
    HipLocalAssemblyKernel,
    SyclLocalAssemblyKernel,
)
from repro.simt.device import A100

KERNELS = {
    "CUDA/match_any": (CudaLocalAssemblyKernel, {}),
    "HIP/done-flag": (HipLocalAssemblyKernel, {"warp_size": 32}),
    "SYCL/sg-barrier": (SyclLocalAssemblyKernel, {"sub_group_size": 32}),
}


def test_ablation_insert_protocols(suite, benchmark):
    contigs = suite.dataset(21)
    profiles = {}
    for name, (cls, kw) in KERNELS.items():
        kern = cls(A100, policy=PRODUCTION_POLICY, **kw)
        profiles[name] = kern.run(contigs, 21,
                                  parallel_scale=BENCH_SCALE).profile
    kern = CudaLocalAssemblyKernel(A100, policy=PRODUCTION_POLICY)
    benchmark.pedantic(lambda: kern.run(contigs, 21,
                                        parallel_scale=BENCH_SCALE),
                       rounds=1, iterations=1)

    print(banner("Ablation — insert protocols (same 32-wide workload)"))
    rows = [
        [name, p.inserts, p.insert_probe_iterations,
         round(p.insert_probe_iterations / p.inserts, 4),
         p.sync_ops, p.intops]
        for name, p in profiles.items()
    ]
    print(render_table(
        ["protocol", "inserts", "probe iters", "iters/insert",
         "sync ops", "INTOPs"], rows))

    cuda, hip, sycl = (profiles[n] for n in KERNELS)
    assert cuda.inserts == hip.inserts == sycl.inserts
    # match_any merging never needs more iterations than retry protocols
    assert cuda.insert_probe_iterations <= hip.insert_probe_iterations
    assert cuda.insert_probe_iterations <= sycl.insert_probe_iterations
    # HIP's double __all vote costs the most synchronization
    assert hip.sync_ops > sycl.sync_ops
