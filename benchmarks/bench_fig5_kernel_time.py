"""Regenerates paper Figure 5: kernel execution time per device per k.

Paper shape (seconds, approximate): A100 ~.019/.021/.013/.021,
MI250X ~.025/.030/.055/.065 (blows up at large k — small L2 + 64-wide
wavefronts), Max 1550 ~.027/.024/.018/.015 (improves with k — huge L2 +
16-wide sub-groups). The reproduction targets those *relations*:
AMD worst and growing with k, Intel best at large k, A100 in between.

The benchmarked operation is one real (simulated) kernel launch.
"""

import pytest
from conftest import BENCH_SCALE, banner

from repro.analysis.report import render_dict_table
from repro.core.extension import PRODUCTION_POLICY
from repro.kernels import kernel_for_device
from repro.simt.device import PLATFORMS


@pytest.mark.parametrize("device", PLATFORMS, ids=[d.name for d in PLATFORMS])
def test_fig5_kernel_run(suite, benchmark, device):
    contigs = suite.dataset(21)
    kern = kernel_for_device(device, policy=PRODUCTION_POLICY)
    benchmark.pedantic(
        lambda: kern.run(contigs, 21, parallel_scale=BENCH_SCALE),
        rounds=1, iterations=1,
    )


def test_fig5_time_comparison(suite, benchmark):
    suite.run_all()
    rows = benchmark(suite.figure5)
    print(banner("Figure 5 — kernel time in seconds"))
    print(render_dict_table(rows))
    t = {r["k"]: r for r in rows}
    # the paper's headline relations
    assert t[77]["MI250X"] > t[77]["A100"] > 0
    assert t[55]["MI250X"] > t[55]["A100"]
    assert t[77]["MAX1550"] <= t[77]["A100"]
    assert t[55]["MAX1550"] <= t[55]["A100"]
    assert t[77]["MI250X"] > t[21]["MI250X"]  # AMD grows with k
