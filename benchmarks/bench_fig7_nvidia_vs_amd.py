"""Regenerates paper Figure 7: A100-vs-MI250X correlation.

Figure 7a (performance): every dot above the diagonal — the CUDA port on
the A100 consistently achieves higher GINTOP/s than the HIP port on one
MI250X GCD. Figure 7b (bytes): every dot *below* the diagonal when
plotted as A100-vs-MI250X — the AMD device moves more data (64-byte
transactions, 8 MB L2).
"""

from conftest import banner

from repro.analysis.report import render_dict_table


def test_fig7_a100_vs_mi250x(suite, benchmark):
    suite.run_all()
    rows = benchmark(suite.figure7)
    print(banner("Figure 7 — A100 vs MI250X"))
    print(render_dict_table(rows))
    for row in rows:
        # 7a: CUDA/A100 outperforms HIP/MI250X
        assert row["A100_gintops_per_s"] > row["MI250X_gintops_per_s"]
        # 7b: the MI250X moves more bytes
        assert row["MI250X_gbytes"] > row["A100_gbytes"]
