"""Regenerates paper Figure 8: A100-vs-Max1550 correlation.

Paper: data movement is close between the two (the Intel tile's huge L2
keeps it at or below the A100's traffic), the A100 achieves higher raw
GINTOP/s at small k, and the SYCL port wins time-to-solution at k=55/77.
"""

from conftest import banner

from repro.analysis.report import render_dict_table


def test_fig8_a100_vs_max1550(suite, benchmark):
    suite.run_all()
    rows = benchmark(suite.figure8)
    print(banner("Figure 8 — A100 vs MAX1550"))
    print(render_dict_table(rows))
    for row in rows:
        # data movement comparable: within 2x either way
        ratio = row["MAX1550_gbytes"] / row["A100_gbytes"]
        assert 0.5 <= ratio <= 2.0
    # time-to-solution at large k favors the Max 1550 (paper Section V-C)
    times = {r["k"]: r for r in suite.figure5()}
    for k in (55, 77):
        if k in times:
            assert times[k]["MAX1550"] <= times[k]["A100"]
