"""Ablation: trace-driven cache simulation vs the analytic capacity model.

DESIGN.md decision #2: the repo carries both an exact set-associative LRU
simulator and the working-set model the kernels use at scale. This bench
validates the analytic hit-rate against the trace simulator on random
table-probe traces across working-set sizes spanning the cache capacity.

The batched :meth:`CacheSim.replay` engine raised the trace size 15x
over the seed (20k -> 300k accesses per working set, tightening the
sampled hit rates) while still running faster than the seed's scalar
loop; the bench prints both paths' times on one working set so the
before/after is visible in CI logs.
"""

import time

import numpy as np
from conftest import banner

from repro.analysis.report import render_table
from repro.simt.device import A100
from repro.simt.memory import AccessCategory, AnalyticCacheModel, CacheSim

LINE = 64
CACHE_BYTES = 64 * 1024
N_ACCESSES = 300_000  # seed: 20_000 (scalar-loop bound)


def _trace_hit_rate(working_set_bytes: int, rng, batched=True) -> float:
    from repro.simt.device import CacheSpec

    sim = CacheSim(CacheSpec(CACHE_BYTES, LINE, 10), ways=16)
    run = sim.replay if batched else sim.access_trace
    addrs = rng.integers(0, max(LINE, working_set_bytes), size=N_ACCESSES)
    # warm up (exclude compulsory misses, as the analytic model does)
    run(addrs[: N_ACCESSES // 4])
    sim.reset_stats()
    run(addrs[N_ACCESSES // 4 :])
    return sim.hit_rate


def test_ablation_cache_models(benchmark):
    rng = np.random.default_rng(0)
    device = A100.with_(l1=A100.l1.__class__(CACHE_BYTES, LINE, 10))
    model = AnalyticCacheModel(device, warps_in_flight=1)
    rows = []
    errors = []
    for ws in (16 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024):
        analytic = min(1.0, CACHE_BYTES / ws)
        cat = AccessCategory("probe", N_ACCESSES, 16.0, float(ws), "random")
        model_l1, _ = model.hit_rates(cat)
        traced = _trace_hit_rate(ws, rng)
        rows.append([ws // 1024, round(traced, 3), round(model_l1, 3),
                     round(abs(traced - model_l1), 3)])
        errors.append(abs(traced - model_l1))
        assert model_l1 == analytic
    benchmark(lambda: _trace_hit_rate(256 * 1024, np.random.default_rng(1)))

    # before/after: the same trace through the seed scalar loop
    t0 = time.perf_counter()
    scalar = _trace_hit_rate(256 * 1024, np.random.default_rng(1),
                             batched=False)
    t_scalar = time.perf_counter() - t0
    t0 = time.perf_counter()
    batched = _trace_hit_rate(256 * 1024, np.random.default_rng(1))
    t_batched = time.perf_counter() - t0
    assert scalar == batched  # bit-identical engines

    print(banner("Ablation — cache models (trace LRU vs analytic min(1, C/W))"))
    print(render_table(["working set (KB)", "traced hit rate",
                        "analytic hit rate", "abs error"], rows))
    print(f"replay of {N_ACCESSES} accesses: scalar {t_scalar:.3f}s, "
          f"batched {t_batched:.3f}s "
          f"({t_scalar / t_batched:.1f}x)")
    # the capacity model tracks the exact simulator within a few percent
    # on uniform random traces
    assert max(errors) < 0.06
