"""Bench: cross-request coalescing vs one-launch-per-job serving.

Drives the real :class:`repro.serve.AssemblyService` over HTTP with a
swarm of concurrent clients burst-submitting small jobs (the harness of
``repro bench --suite serve``), and contrasts the coalescing window
against the degenerate ``window_s = 0`` mode. Asserts the two deliver
byte-identical per-job results (the harness raises otherwise) and that
fusion clears each scale's pinned throughput floor — >= 3x at the full
scale's 8 concurrent clients.
"""

from conftest import banner

from repro.analysis.bench_serve import FULL, SMOKE, run_serve_scale
from repro.analysis.report import render_table


def test_serve_coalescing_throughput(benchmark):
    scales = (SMOKE, FULL)
    docs = {}

    def sweep():
        for scale in scales:
            # run_serve_scale raises on any coalesced/solo result mismatch
            docs[scale.name] = run_serve_scale(scale, repeats=1)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    print(banner("Serve — cross-request coalescing"))
    rows = []
    for scale in scales:
        doc = docs[scale.name]
        coal, solo = doc["coalesced"], doc["solo"]
        rows.append([
            scale.name,
            f"{scale.clients}x{scale.jobs_per_client}",
            coal["waves"], solo["waves"],
            coal["requests_per_s"], solo["requests_per_s"],
            coal["p50_latency_ms"], coal["p99_latency_ms"],
            f"{doc['speedup']:.2f}x",
        ])
    print(render_table(
        ["scale", "clients x jobs", "waves", "solo waves",
         "req/s", "solo req/s", "p50 ms", "p99 ms", "speedup"], rows))

    for scale in scales:
        doc = docs[scale.name]
        # fusion actually happened: far fewer waves than jobs
        assert doc["coalesced"]["waves"] < scale.total_jobs
        assert doc["solo"]["waves"] == scale.total_jobs
        assert doc["speedup"] >= doc["min_speedup"], (
            f"{scale.name}: coalescing speedup {doc['speedup']}x below "
            f"the {doc['min_speedup']}x floor")
