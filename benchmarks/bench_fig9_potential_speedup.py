"""Regenerates paper Figure 9: the potential speed-up plot.

Paper observation reproduced as an assertion: local assembly's points
cluster toward the lower-left of the unit box (large potential speed-ups
on both axes) — very unlike stencil kernels, which sit upper-right.
"""

from conftest import banner

from repro.analysis.report import render_table
from repro.perfmodel.speedup import iso_curve_levels


def test_fig9_potential_speedup(suite, benchmark):
    suite.run_all()
    points = benchmark(suite.figure9)
    print(banner("Figure 9 — potential speed-up"))
    rows = [[p.device, p.k,
             round(100 * p.algorithm_efficiency, 1),
             round(100 * p.architectural_efficiency, 1),
             round(p.speedup_by_improving_ai, 2),
             round(p.speedup_by_improving_performance, 2)]
            for p in points]
    print(render_table(["device", "k", "% theor. II", "% roofline",
                        "speedup via AI", "speedup via perf"], rows))
    print(f"iso-curves: {iso_curve_levels()}")
    # the kernel leaves real speed-up on the table on every platform:
    # no point reaches the paper's 1.33x innermost iso-curve corner
    assert all(p.combined_potential > 1.33 for p in points)
    # and at least one axis offers >=2x somewhere on every device
    for dev in {p.device for p in points}:
        dev_points = [p for p in points if p.device == dev]
        assert any(
            max(p.speedup_by_improving_ai,
                p.speedup_by_improving_performance) >= 2.0
            for p in dev_points
        )
