"""Regenerates paper Table IV: architectural efficiency + Pennycook P_arch.

Paper values for comparison (k: A100 / MI250X / Max1550 / P_arch):
21: 12.8 / 15.1 / 15.6 / 14.4   33: 14.9 / 15.8 / 17.3 / 15.9
55: 14.5 / 18.8 / 16.1 / 16.3   77: 15.6 / 16.1 / 15.3 / 15.6
(average P_arch 15.5%). Our unified INTOP accounting yields different
absolute levels (see EXPERIMENTS.md); the cross-device spread within each
k row is the portability signal.
"""

from conftest import banner

from repro.analysis.report import render_dict_table


def test_table4_architectural_efficiency(suite, benchmark):
    suite.run_all()  # warm the cache so the benchmark times the metric math
    data = benchmark(suite.table4)
    print(banner("Table IV"))
    print(render_dict_table(data["rows"]))
    print(f"average P_arch: {data['average_P_arch']}% (paper: 15.5%)")
    assert 0 < data["average_P_arch"] <= 100
    for row in data["rows"]:
        assert row["P_arch"] <= max(row["A100"], row["MI250X"], row["MAX1550"])
