"""Shared fixtures for the per-table / per-figure benches.

One :class:`ExperimentSuite` is built per session (kernel runs are cached
inside it), so printing every table costs one sweep of the (device, k)
grid. ``BENCH_SCALE`` controls dataset size; the suite extrapolates the
profiles back to paper-size concurrency (see DESIGN.md), and every bench
prints the scale it ran at.

Run with output:  pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.experiments import ExperimentConfig, ExperimentSuite

#: Fraction of the paper's dataset sizes the benches run (override with
#: the REPRO_BENCH_SCALE environment variable; 1.0 = paper-size).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.01"))


@pytest.fixture(scope="session")
def suite() -> ExperimentSuite:
    s = ExperimentSuite(ExperimentConfig(scale=BENCH_SCALE))
    return s


def banner(name: str) -> str:
    return f"\n[{name} @ scale={BENCH_SCALE}]"
