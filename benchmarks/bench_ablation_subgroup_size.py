"""Ablation: SYCL sub-group size sweep (paper Section III-C).

The paper "experimented with several sub-group sizes and found that the
sub-group size of 16 had the most consistent and optimal performance" on
the Max 1550. The trade the sweep exposes: wider sub-groups finish
construction in fewer waves but waste more issue width during the
single-lane walk; narrower ones invert that.
"""

from conftest import BENCH_SCALE, banner

from repro.analysis.report import render_table
from repro.core.extension import PRODUCTION_POLICY
from repro.kernels.sycl_kernel import SUPPORTED_SUB_GROUP_SIZES, SyclLocalAssemblyKernel
from repro.perfmodel.timing import extrapolate_profile
from repro.simt.device import MAX1550


def test_ablation_subgroup_size(suite, benchmark):
    results = {}
    for size in SUPPORTED_SUB_GROUP_SIZES:
        kern = SyclLocalAssemblyKernel(MAX1550, sub_group_size=size,
                                       policy=PRODUCTION_POLICY)
        total = 0.0
        per_k = {}
        for k in (21, 77):
            res = kern.run(suite.dataset(k), k, parallel_scale=BENCH_SCALE)
            full = extrapolate_profile(res.profile, MAX1550, BENCH_SCALE)
            per_k[k] = full
            total += full.seconds
        results[size] = (total, per_k)
    kern16 = SyclLocalAssemblyKernel(MAX1550, policy=PRODUCTION_POLICY)
    benchmark.pedantic(
        lambda: kern16.run(suite.dataset(21), 21, parallel_scale=BENCH_SCALE),
        rounds=1, iterations=1,
    )

    print(banner("Ablation — SYCL sub-group size (k=21 + k=77 total)"))
    rows = [
        [size, round(total * 1e3, 2),
         round(per_k[21].active_lane_fraction, 3),
         round(per_k[77].active_lane_fraction, 3)]
        for size, (total, per_k) in results.items()
    ]
    print(render_table(["sub-group size", "total time (ms)",
                        "active lanes k=21", "active lanes k=77"], rows))

    # the paper's finding: 16 beats 32 (walk predication dominates)
    assert results[16][0] < results[32][0]
    # and narrower sub-groups always waste fewer lanes
    assert (results[8][1][77].active_lane_fraction
            > results[16][1][77].active_lane_fraction
            > results[32][1][77].active_lane_fraction)
