"""Ablation: independent thread scheduling (the paper's Section VI remark).

"Independent thread scheduling may help mitigate the issues" — with it,
every lane of a warp can run its own mer-walk instead of idling while one
lane walks. This bench quantifies the suggestion: the same kernels with
lane-parallel walks enabled, i.e. walk instructions stop occupying the
full warp width. The MI250X — whose 64-wide wavefronts pay the biggest
predication tax — gains the most, erasing its large-k blow-up.
"""

from conftest import BENCH_SCALE, banner

from repro.analysis.report import render_table
from repro.core.extension import PRODUCTION_POLICY
from repro.kernels import kernel_for_device
from repro.perfmodel.timing import extrapolate_profile
from repro.simt.device import PLATFORMS, MI250X


def _time(device, contigs, k, lane_parallel):
    kern = kernel_for_device(device, policy=PRODUCTION_POLICY,
                             lane_parallel_walks=lane_parallel)
    res = kern.run(contigs, k, parallel_scale=BENCH_SCALE)
    return extrapolate_profile(res.profile, device, BENCH_SCALE).seconds


def test_ablation_independent_thread_scheduling(suite, benchmark):
    k = 77  # walk-dominated: where predication hurts most
    contigs = suite.dataset(k)
    rows = []
    gains = {}
    for device in PLATFORMS:
        base = _time(device, contigs, k, lane_parallel=False)
        its = _time(device, contigs, k, lane_parallel=True)
        gains[device.name] = base / its
        rows.append([device.name, device.warp_size,
                     round(base * 1e3, 2), round(its * 1e3, 2),
                     round(base / its, 2)])
    benchmark.pedantic(
        lambda: _time(MI250X, contigs, k, True), rounds=1, iterations=1)

    print(banner("Ablation — independent thread scheduling (k=77)"))
    print(render_table(["device", "warp", "baseline (ms)",
                        "lane-parallel walks (ms)", "speed-up"], rows))

    # every device gains, and the widest warps gain the most
    assert all(g > 1.0 for g in gains.values())
    assert gains["MI250X"] > gains["A100"] > gains["MAX1550"]
