"""Regenerates paper Figure 6: INTOP roofline per device.

Paper observations reproduced as assertions: the A100 runs compute-bound
at every k; the MI250X sits at the *lowest* intensity of the three
(its 64-byte transactions and 8 MB L2 move the most bytes per INTOP);
the Max 1550's intensity grows with k (its 204 MB L2 absorbs the larger
tables). One deviation is documented in EXPERIMENTS.md: our unified
accounting gives AMD an intensity that grows with k, where the paper's
rocprof-based counting shrinks.
"""

from conftest import banner

from repro.analysis.report import render_table


def test_fig6_roofline(suite, benchmark):
    suite.run_all()
    data = benchmark(suite.figure6)
    print(banner("Figure 6 — INTOP roofline"))
    for name, entry in data.items():
        rows = [[p["k"], p["II"], p["gintops_per_s"], p["bound"],
                 p["pct_of_ceiling"]] for p in entry["points"]]
        print(render_table(
            ["k", "II", "GINTOP/s", "bound", "% ceiling"], rows,
            title=(f"{name}: peak={entry['peak_gintops']} GINTOPS "
                   f"bw={entry['hbm_gbps']} GB/s balance={entry['machine_balance']}")))
    a100 = {p["k"]: p for p in data["A100"]["points"]}
    amd = {p["k"]: p for p in data["MI250X"]["points"]}
    intel = {p["k"]: p for p in data["MAX1550"]["points"]}
    for k in a100:
        assert a100[k]["bound"] == "compute"       # paper: A100 compute-bound
        assert amd[k]["II"] < a100[k]["II"]        # AMD lowest intensity
        assert amd[k]["II"] < intel[k]["II"]
    ks = sorted(intel)
    assert intel[ks[-1]]["II"] > intel[ks[0]]["II"]  # Intel II grows with k
