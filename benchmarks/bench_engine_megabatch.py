"""Tentpole bench: megabatch engine vs the scalar parity oracle.

Times the pre-refactor per-warp engine (preserved verbatim as
:func:`repro.kernels.engine.oracle_kernel_cls`) against the lockstep
NumPy hot path on the same Table II-shaped ``run_schedule`` workload,
and asserts the two are *bit-identical* — same extensions, same walk
states, same settled k, same merged profile dict, same per-type event
counts (with every gated event type forced on by the counter).

Defaults to 256 contigs (the acceptance size); override with the
``REPRO_ENGINE_BENCH_CONTIGS`` environment variable. The >=5x speedup
assertion only arms at >=256 contigs so the CI smoke run on tiny inputs
checks identity without timing noise.
"""

import os
import time

import numpy as np
from conftest import banner

from repro.analysis.report import render_table
from repro.core.extension import PRODUCTION_POLICY
from repro.genomics.simulate import ErrorProfile, ScenarioSpec, simulate_batch
from repro.kernels import CudaLocalAssemblyKernel, HipLocalAssemblyKernel
from repro.kernels.engine import oracle_kernel_cls
from repro.resilience.checkpoint import profile_to_dict
from repro.simt.device import A100, MI250X

N_CONTIGS = int(os.environ.get("REPRO_ENGINE_BENCH_CONTIGS", "256"))
K_SCHEDULE = (21, 33, 55, 77)
SPEEDUP_FLOOR = 5.0


class _EventCounter:
    """Counts every event by type name; declares no handled_events, so
    the bus forces gated slot/barrier events on for both engines."""

    def __init__(self):
        self.counts = {}

    def handle(self, event, bus):
        name = type(event).__name__
        self.counts[name] = self.counts.get(name, 0) + 1


def _contigs(n=N_CONTIGS):
    # Error-bearing reads keep every k of the schedule live (perfect reads
    # settle after the first k), which is what stresses the probe chains.
    spec = ScenarioSpec(contig_length=220, flank_length=90, read_length=150,
                        depth=10, seed_window=60)
    errors = ErrorProfile(error_rate=0.005, lo_quality_fraction=0.1)
    rng = np.random.default_rng(2024)
    return [sc.contig for sc in simulate_batch(n, spec, rng, errors)]


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def _run_schedule(kernel_cls, device, contigs, counted):
    kern = kernel_cls(device, policy=PRODUCTION_POLICY)
    if counted:
        counter = kern.add_subscriber(_EventCounter())
        return kern.run_schedule(contigs, K_SCHEDULE), counter.counts
    return kern.run_schedule(contigs, K_SCHEDULE), None


def test_megabatch_speedup_and_identity(benchmark):
    contigs = _contigs()
    rows = []
    speedups = []
    for kernel_cls, device in ((CudaLocalAssemblyKernel, A100),
                               (HipLocalAssemblyKernel, MI250X)):
        oracle_cls = oracle_kernel_cls(kernel_cls)

        # identity pass: instrumented, every gated event forced on
        (res_o, ev_o), _ = _timed(
            lambda: _run_schedule(oracle_cls, device, contigs, counted=True))
        (res_m, ev_m), _ = _timed(
            lambda: _run_schedule(kernel_cls, device, contigs, counted=True))
        assert res_m.right == res_o.right
        assert res_m.left == res_o.left
        assert res_m.k == res_o.k
        assert (res_m.degraded, res_m.retried) == (res_o.degraded,
                                                   res_o.retried)
        assert profile_to_dict(res_m.profile) == profile_to_dict(res_o.profile)
        assert ev_m == ev_o

        # timing pass: fresh uninstrumented kernels, best of 3
        t_oracle = min(_timed(lambda: _run_schedule(
            oracle_cls, device, contigs, counted=False))[1] for _ in range(3))
        t_mega = min(_timed(lambda: _run_schedule(
            kernel_cls, device, contigs, counted=False))[1] for _ in range(3))

        speedup = t_oracle / t_mega
        speedups.append(speedup)
        rows.append([device.name, len(contigs), res_m.k,
                     res_m.profile.extension_bases,
                     round(t_oracle, 3), round(t_mega, 3),
                     round(speedup, 1)])

    benchmark.pedantic(
        lambda: _run_schedule(CudaLocalAssemblyKernel, A100, contigs,
                              counted=False),
        rounds=1, iterations=1)

    print(banner(f"megabatch engine — {N_CONTIGS} contigs, k={K_SCHEDULE}"))
    print(render_table(
        ["device", "contigs", "k", "ext bases",
         "oracle (s)", "megabatch (s)", "speedup"], rows))

    if N_CONTIGS >= 256:
        assert min(speedups) >= SPEEDUP_FLOOR, (
            f"megabatch run_schedule must be >={SPEEDUP_FLOOR}x the scalar "
            f"oracle at acceptance scale; got {min(speedups):.1f}x")
