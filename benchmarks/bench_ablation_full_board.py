"""Ablation: single die/tile (the paper's setup) vs the full board.

The paper notes the MI250X has two GCDs and the Max 1550 two tiles, and
uses one of each. This bench models the optimistic full-board scaling
(2x compute, L2, bandwidth; no cross-die penalty) and reports how much of
the A100 gap it closes.
"""

from conftest import BENCH_SCALE, banner

from repro.analysis.report import render_table
from repro.core.extension import PRODUCTION_POLICY
from repro.kernels import kernel_for_device
from repro.perfmodel.timing import extrapolate_profile
from repro.simt.device import A100, MAX1550, MI250X, full_board


def _time(device, contigs, k):
    kern = kernel_for_device(device, policy=PRODUCTION_POLICY)
    res = kern.run(contigs, k, parallel_scale=BENCH_SCALE)
    return extrapolate_profile(res.profile, device, BENCH_SCALE).seconds


def test_ablation_full_board(suite, benchmark):
    k = 55
    contigs = suite.dataset(k)
    rows = []
    times = {}
    for base_dev in (MI250X, MAX1550):
        single = _time(base_dev, contigs, k)
        full = _time(full_board(base_dev), contigs, k)
        times[base_dev.name] = (single, full)
        rows.append([base_dev.name, round(single * 1e3, 2),
                     round(full * 1e3, 2), round(single / full, 2)])
    benchmark.pedantic(lambda: _time(full_board(MI250X), contigs, k),
                       rounds=1, iterations=1)

    print(banner("Ablation — single die/tile vs full board (k=55)"))
    print(render_table(["device", "single (ms)", "full board (ms)",
                        "speed-up"], rows))
    a100 = _time(A100, contigs, k)
    print(f"A100 reference: {a100 * 1e3:.2f} ms")

    for name, (single, full) in times.items():
        assert 1.5 < single / full <= 2.05  # near-linear optimistic scaling
    # the full MI250X overtakes the single-die A100 it loses to
    assert times["MI250X"][0] > a100 > times["MI250X"][1]
