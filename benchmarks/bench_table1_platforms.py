"""Regenerates paper Table I: HPC systems, accelerators, models, compilers."""

from conftest import banner

from repro.analysis.report import render_dict_table


def test_table1_platforms(suite, benchmark):
    rows = benchmark(suite.table1)
    print(banner("Table I"))
    print(render_dict_table(rows))
    assert [r["programming_model"] for r in rows] == ["CUDA", "HIP", "SYCL"]
