"""Tentpole bench: serial vs process-parallel experiment suite.

Times ``ExperimentSuite.run_all()`` (the historical serial sweep of the
12-cell ``(device, k)`` grid) against ``run_all(workers=N)`` (the grid
sharded across a process pool, results merged through the checkpoint
codec) and asserts the parallel suite's artifacts are identical —
``figure5`` rows and Table IV/VII efficiency summaries compare equal,
and the byte-level export parity is covered by
``tests/analysis/test_parallel_suite.py``.

The >=1.5x speedup assertion arms only at the acceptance configuration:
default scale (>= 0.02) *and* at least 4 usable cores. The CI smoke run
(tiny scale, any core count) still exercises the full parallel path and
the identity asserts, it just skips the timing claim — same convention
as ``bench_cachesim_replay.py``'s >=10x floor.
"""

import os
import time

from conftest import BENCH_SCALE, banner

from repro.analysis.experiments import ExperimentConfig, ExperimentSuite
from repro.analysis.report import render_table

WORKERS = int(os.environ.get("REPRO_SUITE_BENCH_WORKERS", "4"))
SPEEDUP_FLOOR = 1.5
ASSERT_SCALE = 0.02  # the suite's default / acceptance scale


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def test_suite_parallel_speedup_and_identity(benchmark):
    serial = ExperimentSuite(ExperimentConfig(scale=BENCH_SCALE))
    _, t_serial = _timed(serial.run_all)

    parallel = ExperimentSuite(ExperimentConfig(scale=BENCH_SCALE,
                                                workers=WORKERS))
    _, t_parallel = _timed(parallel.run_all)

    # identical artifacts, not just close: the codec round-trip is exact
    assert parallel.figure5() == serial.figure5()
    assert parallel.table4() == serial.table4()
    assert parallel.table7() == serial.table7()
    assert parallel._runs.keys() == serial._runs.keys()

    benchmark.pedantic(
        lambda: ExperimentSuite(
            ExperimentConfig(scale=BENCH_SCALE, workers=WORKERS)).run_all(),
        rounds=1, iterations=1)

    speedup = t_serial / t_parallel
    n_runs = len(serial._runs)
    cores = _usable_cores()
    print(banner(f"Suite parallelism — {n_runs} (device, k) runs, "
                 f"{WORKERS} workers, {cores} usable cores"))
    print(render_table(
        ["runs", "workers", "serial (s)", "parallel (s)", "speedup"],
        [[n_runs, WORKERS, round(t_serial, 2), round(t_parallel, 2),
          round(speedup, 2)]]))

    if BENCH_SCALE >= ASSERT_SCALE and cores >= WORKERS:
        assert speedup >= SPEEDUP_FLOOR, (
            f"parallel suite must be >={SPEEDUP_FLOOR}x serial at "
            f"acceptance scale on >= {WORKERS} cores; got {speedup:.2f}x")
