"""Ablation: validate the analytic cache model against real kernel traces.

Runs one launch with table-slot address recording enabled, replays the
exact addresses through the batched set-associative cache simulator
sized as each device's L2, and compares the resulting hit rate with the
analytic model's prediction for the same launch. The analytic model is
evaluated at the *measured* batch size (parallel_scale=1), so the two see
identical pressure.

The batched :meth:`CacheSim.replay` engine made trace-scale validation
cheap: the seed ran this bench at scale 0.004 because the scalar
simulator was O(accesses) in Python; the batched path replays the same
trace an order of magnitude faster, so the bench now runs 5x more
contigs and prints both paths' times side by side.
"""

import time

import numpy as np
from conftest import banner

from repro.analysis.report import render_table
from repro.core.extension import PRODUCTION_POLICY
from repro.datasets.generate import generate_paper_dataset
from repro.kernels import kernel_for_device
from repro.kernels.vectortable import SLOT_BYTES
from repro.simt.device import A100, MI250X
from repro.simt.memory import AccessCategory, AnalyticCacheModel, CacheSim

SCALE = 0.02  # 5x the seed's 0.004: batched replay is no longer the limit


def _replay_hit_rate(device, trace, batched=True):
    """Warm-up on the first quarter, measure the rest (excluding
    compulsory misses, as the analytic model does)."""
    sim = CacheSim(device.l2, ways=16)
    run = sim.replay if batched else sim.access_trace
    n_warm = len(trace) // 4
    run(trace[:n_warm])
    sim.reset_stats()
    run(trace[n_warm:])
    return sim.hit_rate


def _measure(device, contigs, k):
    kern = kernel_for_device(device, policy=PRODUCTION_POLICY)
    kern.record_trace = True
    kern.run(contigs, k)  # parallel_scale=1: model the batch as-is
    trace = np.concatenate(kern.last_trace)
    # L2 replay: atomics bypass L1, so the raw trace is what the L2 sees
    t0 = time.perf_counter()
    traced = _replay_hit_rate(device, trace)
    t_batched = time.perf_counter() - t0
    t0 = time.perf_counter()
    scalar = _replay_hit_rate(device, trace, batched=False)
    t_scalar = time.perf_counter() - t0
    assert scalar == traced  # bit-identical engines
    # analytic prediction for the same (unscaled) batch
    n_warps = len(contigs)
    table_bytes = trace.max() / max(1, n_warps)  # mean footprint per warp
    model = AnalyticCacheModel(device, warps_in_flight=n_warps)
    cat = AccessCategory("table_probe", len(trace), 16.0,
                        float(table_bytes), "random", atomic=True)
    _, l2_pred = model.hit_rates(cat)
    return traced, l2_pred, len(trace), t_scalar, t_batched


def test_ablation_trace_validation(benchmark):
    contigs = generate_paper_dataset(21, scale=SCALE)
    rows = []
    errors = []
    for device in (A100, MI250X):
        traced, predicted, n, t_scalar, t_batched = _measure(
            device, contigs, 21)
        rows.append([device.name, n, round(traced, 3), round(predicted, 3),
                     round(abs(traced - predicted), 3),
                     round(t_scalar, 3), round(t_batched, 3)])
        errors.append(abs(traced - predicted))
    benchmark.pedantic(
        lambda: _replay_hit_rate(
            A100, np.concatenate([np.arange(0, 10_000) * SLOT_BYTES] * 4)),
        rounds=1, iterations=1)

    print(banner("Ablation — trace-driven vs analytic L2 hit rate (k=21)"))
    print(render_table(["device", "accesses", "traced L2 hit",
                        "analytic L2 hit", "abs error",
                        "scalar (s)", "batched (s)"], rows))
    # the capacity model tracks the exact replay within a coarse band; at
    # this scale tables fit both L2s, so both must predict high hit rates
    assert max(errors) < 0.30
    assert all(r[2] > 0.5 for r in rows)
