"""Ablation: the walk-resolution policy thresholds.

The extension lengths of Table II depend on the walk rule (how much
evidence a step needs, how competitive a runner-up may be). This bench
sweeps the two policies the library ships plus a strict variant, showing
the trade the thresholds encode: permissive policies extend further but
follow more single-read (potentially erroneous) evidence; strict ones
stop early.
"""

from conftest import BENCH_SCALE, banner

from repro.analysis.report import render_table
from repro.core.extension import DEFAULT_POLICY, PRODUCTION_POLICY, WalkPolicy
from repro.kernels import CudaLocalAssemblyKernel
from repro.simt.device import A100

POLICIES = {
    "production (MetaHipMer-like)": PRODUCTION_POLICY,
    "default (conservative)": DEFAULT_POLICY,
    "strict (depth>=3, dom 3)": WalkPolicy(hi_q_min_depth=3, min_depth=3,
                                           dominance=3),
}


def test_ablation_walk_policy(suite, benchmark):
    contigs = suite.dataset(21)
    results = {}
    for name, policy in POLICIES.items():
        kern = CudaLocalAssemblyKernel(A100, policy=policy)
        res = kern.run(contigs, 21, parallel_scale=BENCH_SCALE)
        forks = sum(1 for _, s in res.right if s.value == "fork") + sum(
            1 for _, s in res.left if s.value == "fork")
        results[name] = (res.profile.extension_bases / len(contigs),
                         forks / (2 * len(contigs)))
    kern = CudaLocalAssemblyKernel(A100, policy=PRODUCTION_POLICY)
    benchmark.pedantic(lambda: kern.run(contigs, 21,
                                        parallel_scale=BENCH_SCALE),
                       rounds=1, iterations=1)

    print(banner("Ablation — walk policy (k=21)"))
    rows = [[name, round(avg, 1), round(100 * forks, 1)]
            for name, (avg, forks) in results.items()]
    print(render_table(["policy", "avg extension/contig", "fork rate %"],
                       rows))

    ext = {name: avg for name, (avg, _) in results.items()}
    # permissiveness orders extension lengths
    assert (ext["production (MetaHipMer-like)"]
            > ext["default (conservative)"]
            >= ext["strict (depth>=3, dom 3)"])
    # only the production policy reaches Table II's 48.2 +- 25%
    assert ext["production (MetaHipMer-like)"] == (
        __import__("pytest").approx(48.2, rel=0.25))
