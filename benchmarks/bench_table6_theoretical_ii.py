"""Regenerates paper Table VI: theoretical INTOP Intensity.

Exact closed-form reproduction: II = 4.831 / 4.880 / 4.785 / 4.942 for
k = 21 / 33 / 55 / 77 (Equation 4 over Tables V's INTOPs and B1+B2 bytes).
"""

from conftest import banner

from repro.analysis.report import render_dict_table

PAPER_TABLE_VI = {21: 4.831, 33: 4.880, 55: 4.785, 77: 4.942}


def test_table6_theoretical_ii(suite, benchmark):
    rows = benchmark(suite.table6)
    print(banner("Table VI"))
    print(render_dict_table(rows))
    for row in rows:
        assert abs(row["theoretical_II"] - PAPER_TABLE_VI[row["k"]]) < 0.001
