"""Ablation: contig binning (Figure 3) vs a single unsorted launch.

The paper motivates binning as warp-stall avoidance: walks with wildly
different lengths in the same launch leave early-finishing warps idle.
Measured: per-launch work imbalance and the serial-chain cycles that the
timing model turns into latency.
"""

from conftest import BENCH_SCALE, banner

from repro.analysis.report import render_table
from repro.core.binning import bin_contigs, binning_imbalance
from repro.core.extension import PRODUCTION_POLICY
from repro.kernels import CudaLocalAssemblyKernel
from repro.simt.device import A100


def test_ablation_binning(suite, benchmark):
    contigs = suite.dataset(21)
    kern = CudaLocalAssemblyKernel(A100, policy=PRODUCTION_POLICY)

    binned = bin_contigs(contigs, 21, depth_ratio=2.0)
    unbinned = bin_contigs(contigs, 21, depth_ratio=1e12)
    assert len(unbinned) == 1

    res_binned = kern.run(contigs, 21, depth_ratio=2.0,
                          parallel_scale=BENCH_SCALE)
    res_unbinned = kern.run(contigs, 21, depth_ratio=1e12,
                            parallel_scale=BENCH_SCALE)
    benchmark.pedantic(lambda: kern.run(contigs, 21, depth_ratio=2.0,
                                        parallel_scale=BENCH_SCALE),
                       rounds=1, iterations=1)

    imb_b = binning_imbalance(contigs, binned, 21)
    imb_u = binning_imbalance(contigs, unbinned, 21)
    print(banner("Ablation — binning"))
    rows = [
        ["binned (ratio 2.0)", len(binned), round(imb_b, 2),
         res_binned.profile.kernels_launched,
         round(res_binned.profile.construct_chain_cycles / 1e6, 2)],
        ["unbinned", len(unbinned), round(imb_u, 2),
         res_unbinned.profile.kernels_launched,
         round(res_unbinned.profile.construct_chain_cycles / 1e6, 2)],
    ]
    print(render_table(
        ["configuration", "bins", "work imbalance (max/mean)",
         "launches", "construct chain Mcycles"], rows))

    # binning's purpose: similar work per launch
    assert imb_b < imb_u
    # identical functional output either way
    assert res_binned.right == res_unbinned.right
    assert res_binned.left == res_unbinned.left
