"""Ablation: scalar CPU implementation vs warp-synchronous vectorized SIMT.

DESIGN.md decision #1: the SIMT kernels execute all warps in NumPy
lockstep instead of looping over lanes in Python. This bench measures the
host-side speedup of that choice (same algorithm, same results) by
running the scalar ``LocalHashTable``-based pipeline and the vectorized
CUDA kernel over the same contigs.
"""

import time

from conftest import banner

from repro.analysis.report import render_table
from repro.core.extension import PRODUCTION_POLICY
from repro.core.pipeline import LocalAssembler
from repro.kernels import CudaLocalAssemblyKernel
from repro.simt.device import A100

N_CONTIGS = 40


def test_ablation_scalar_vs_vector(suite, benchmark):
    contigs = suite.dataset(21)[:N_CONTIGS]

    t0 = time.perf_counter()
    asm = LocalAssembler(k_schedule=(21,), policy=PRODUCTION_POLICY)
    scalar_results = asm.assemble(contigs)
    scalar_s = time.perf_counter() - t0

    kern = CudaLocalAssemblyKernel(A100, policy=PRODUCTION_POLICY)
    t0 = time.perf_counter()
    vector_result = kern.run(contigs, 21)
    vector_s = time.perf_counter() - t0
    benchmark.pedantic(lambda: kern.run(contigs, 21), rounds=1, iterations=1)

    print(banner(f"Ablation — scalar vs vectorized ({N_CONTIGS} contigs, k=21)"))
    print(render_table(
        ["implementation", "host seconds", "per contig (ms)"],
        [["scalar LocalHashTable pipeline", round(scalar_s, 3),
          round(1e3 * scalar_s / N_CONTIGS, 2)],
         ["vectorized SIMT kernel", round(vector_s, 3),
          round(1e3 * vector_s / N_CONTIGS, 2)]],
    ))
    print(f"vectorization speedup: {scalar_s / vector_s:.1f}x")

    # identical extensions from both implementations
    for i, res in enumerate(scalar_results):
        assert vector_result.right[i][0] == res.contig.right_extension.bases
        assert vector_result.left[i][0] == res.contig.left_extension.bases
