"""Ablation: hash-table sizing — GPU upper bound vs exact insertion count.

The GPU pre-processing (Figure 3) must reserve capacity before the k
iterations run, so it sizes tables from the k-independent read-volume
bound. The trade: generous tables probe less (fewer collisions) but their
aggregate footprint is what overwhelms the MI250X's 8 MB L2 at large k.
"""

from conftest import BENCH_SCALE, banner

from repro.analysis.report import render_table
from repro.core.extension import PRODUCTION_POLICY
from repro.kernels import HipLocalAssemblyKernel
from repro.simt.device import MI250X


def test_ablation_table_sizing(suite, benchmark):
    contigs = suite.dataset(77)
    profiles = {}
    for sizing in ("upper_bound", "exact"):
        kern = HipLocalAssemblyKernel(MI250X, policy=PRODUCTION_POLICY,
                                      table_sizing=sizing)
        res = kern.run(contigs, 77, parallel_scale=BENCH_SCALE)
        profiles[sizing] = res
    kern = HipLocalAssemblyKernel(MI250X, policy=PRODUCTION_POLICY)
    benchmark.pedantic(lambda: kern.run(contigs, 77,
                                        parallel_scale=BENCH_SCALE),
                       rounds=1, iterations=1)

    print(banner("Ablation — table sizing on MI250X, k=77"))
    rows = [
        [name, p.profile.inserts,
         round(p.profile.mean_insert_probes, 4),
         round(p.profile.hbm_bytes / 1e6, 2)]
        for name, p in profiles.items()
    ]
    print(render_table(["sizing", "inserts", "probes/insert", "HBM MB"], rows))

    ub, ex = profiles["upper_bound"].profile, profiles["exact"].profile
    # generous tables probe no more than tight ones...
    assert ub.mean_insert_probes <= ex.mean_insert_probes
    # ...and functional output is identical
    assert profiles["upper_bound"].right == profiles["exact"].right
