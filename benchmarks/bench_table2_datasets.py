"""Regenerates paper Table II: dataset characteristics (measured vs target).

The generation itself is the benchmarked operation; the printed table
compares every measured column against the scaled paper targets.
"""

from conftest import BENCH_SCALE, banner

from repro.analysis.report import render_dict_table
from repro.datasets.generate import generate_paper_dataset


def test_table2_characteristics(suite, benchmark):
    benchmark.pedantic(
        lambda: generate_paper_dataset(21, scale=min(0.005, BENCH_SCALE)),
        rounds=3, iterations=1,
    )
    rows = suite.table2()
    print(banner("Table II"))
    print(render_dict_table(rows))
    for row in rows:
        assert row["contigs"] == row["contigs_target"]
        assert abs(row["insertions"] - row["insertions_target"]) <= (
            0.08 * row["insertions_target"]
        )
