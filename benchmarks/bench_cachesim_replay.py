"""Tentpole bench: batched set-associative replay vs the scalar simulator.

Times the seed scalar path (:meth:`CacheSim.access_trace`, one Python
iteration per access) against the vectorized batch-replay engine
(:meth:`CacheSim.replay`, one NumPy round per set-depth) on the same
table-probe trace, and asserts the two are *bit-identical* — same
per-access hit vector, same hit/miss totals, same final tag/LRU state.

Defaults to a 1M-access trace (the acceptance size); override with the
``REPRO_REPLAY_BENCH_ACCESSES`` environment variable. The >=10x speedup
assertion only arms at >=1M accesses so the CI smoke run on tiny inputs
checks identity without timing noise.
"""

import os
import time

import numpy as np
from conftest import banner

from repro.analysis.report import render_table
from repro.simt.device import A100, MAX1550, MI250X
from repro.simt.memory import CacheHierarchy, CacheSim

N_ACCESSES = int(os.environ.get("REPRO_REPLAY_BENCH_ACCESSES", "1_000_000"))
SPEEDUP_FLOOR = 10.0


def _trace(device, rng, n=N_ACCESSES):
    """Random probes over a working set 4x the device's L2 (miss-heavy —
    the regime Table V's occupancy-scaled kernels actually run in)."""
    return rng.integers(0, 4 * device.l2.size_bytes, size=n)


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def test_replay_speedup_and_identity(benchmark):
    rows = []
    speedups = []
    for device in (A100, MI250X, MAX1550):
        trace = _trace(device, np.random.default_rng(42))
        scalar = CacheSim(device.l2, ways=16)
        scalar_hits, t_scalar = _timed(lambda: scalar.access_trace(trace))

        # best-of-3 on fresh caches: the batched path finishes in well
        # under a second, so a single sample on a shared box is noise
        batched, t_batched = CacheSim(device.l2, ways=16), float("inf")
        batched_hits = None
        for _ in range(3):
            fresh = CacheSim(device.l2, ways=16)
            hits, t = _timed(lambda: fresh.replay(trace))
            if t < t_batched:
                batched, t_batched, batched_hits = fresh, t, hits

        assert (scalar_hits == batched_hits).all()
        assert (scalar.hits, scalar.misses) == (batched.hits, batched.misses)
        assert (scalar._tags == batched._tags).all()
        assert (scalar._lru == batched._lru).all()

        speedup = t_scalar / t_batched
        speedups.append(speedup)
        rows.append([device.name, len(trace), scalar.hits, scalar.misses,
                     round(t_scalar, 3), round(t_batched, 3),
                     round(speedup, 1)])

    benchmark.pedantic(
        lambda: CacheSim(MI250X.l2, ways=16).replay(
            _trace(MI250X, np.random.default_rng(7))),
        rounds=1, iterations=1)

    print(banner(f"CacheSim batched replay — {N_ACCESSES} accesses/device"))
    print(render_table(
        ["device L2", "accesses", "hits", "misses",
         "scalar (s)", "batched (s)", "speedup"], rows))

    if N_ACCESSES >= 1_000_000:
        assert min(speedups) >= SPEEDUP_FLOOR, (
            f"batched replay must be >={SPEEDUP_FLOOR}x the scalar "
            f"simulator at acceptance scale; got {min(speedups):.1f}x")


def test_hierarchy_replay_identity(benchmark):
    """Full L1->L2->HBM composition, atomic semantics: batched == scalar."""
    n = min(N_ACCESSES, 100_000)  # scalar hierarchy is the bottleneck
    trace = _trace(MI250X, np.random.default_rng(9), n=n)
    scalar = CacheHierarchy(MI250X)
    counts_scalar = {"l1": 0, "l2": 0, "hbm": 0}
    _, t_scalar = _timed(
        lambda: [counts_scalar.__setitem__(
            lvl := scalar.access(int(a), atomic=True),
            counts_scalar[lvl] + 1) for a in trace])
    batched = CacheHierarchy(MI250X)
    counts_batched, t_batched = _timed(
        lambda: batched.replay(trace, atomic=True))

    assert counts_batched == counts_scalar
    assert scalar.hbm_transactions == batched.hbm_transactions
    assert scalar.hbm_bytes == batched.hbm_bytes
    benchmark.pedantic(
        lambda: CacheHierarchy(MI250X).replay(trace, atomic=True),
        rounds=1, iterations=1)

    print(banner(f"CacheHierarchy batched replay — {n} atomic accesses"))
    print(render_table(
        ["l1", "l2", "hbm", "scalar (s)", "batched (s)", "speedup"],
        [[counts_batched["l1"], counts_batched["l2"], counts_batched["hbm"],
          round(t_scalar, 3), round(t_batched, 3),
          round(t_scalar / t_batched, 1)]]))
